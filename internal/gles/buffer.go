package gles

import (
	"fmt"

	"gles2gpgpu/internal/device"
)

// GenBuffer creates a buffer object name.
func (c *Context) GenBuffer() uint32 {
	c.apiCost()
	name := c.genName()
	c.buffers[name] = &Buffer{name: name, usage: STATIC_DRAW}
	return name
}

// BindBuffer binds a buffer to ARRAY_BUFFER.
func (c *Context) BindBuffer(target Enum, name uint32) {
	c.apiCost()
	if target != ARRAY_BUFFER {
		c.setErr(INVALID_ENUM)
		return
	}
	if name != 0 {
		if _, ok := c.buffers[name]; !ok {
			c.setErr(INVALID_OPERATION)
			return
		}
	}
	c.boundArray = name
}

// DeleteBuffer deletes a buffer object.
func (c *Context) DeleteBuffer(name uint32) {
	c.apiCost()
	b, ok := c.buffers[name]
	if !ok {
		return
	}
	if b.data != nil {
		_ = c.alloc.Free(b.alloc)
		c.m.FreeResource(b.res)
	}
	delete(c.buffers, name)
	if c.boundArray == name {
		c.boundArray = 0
	}
}

// BufferData allocates GPU-managed storage for the bound VBO and uploads
// data — the paper's Vertex Processing optimisation: the copy into GPU
// memory happens once here instead of on every draw, and the usage hint
// tells the driver how much consistency maintenance to do.
func (c *Context) BufferData(target Enum, data []byte, usage Enum) {
	c.apiCost()
	if target != ARRAY_BUFFER {
		c.setErr(INVALID_ENUM)
		return
	}
	switch usage {
	case STATIC_DRAW, DYNAMIC_DRAW, STREAM_DRAW:
	default:
		c.setErr(INVALID_ENUM)
		return
	}
	b := c.buffers[c.boundArray]
	if b == nil {
		c.setErr(INVALID_OPERATION)
		return
	}
	if b.data != nil {
		_ = c.alloc.Free(b.alloc)
		c.m.FreeResource(b.res)
	}
	a, cost := c.alloc.Alloc(len(data), fmt.Sprintf("vbo%d", b.name))
	c.m.AllocCost(cost)
	b.alloc = a
	b.res = c.m.NewResource(fmt.Sprintf("vbo%d", b.name))
	b.usage = usage
	b.data = make([]byte, len(data))
	copy(b.data, data)
	c.m.Upload(b.res, len(data), false)
}

// BufferSubData updates part of a VBO.
func (c *Context) BufferSubData(target Enum, offset int, data []byte) {
	c.apiCost()
	if target != ARRAY_BUFFER {
		c.setErr(INVALID_ENUM)
		return
	}
	b := c.buffers[c.boundArray]
	if b == nil || b.data == nil {
		c.setErr(INVALID_OPERATION)
		return
	}
	if offset < 0 || offset+len(data) > len(b.data) {
		c.setErr(INVALID_VALUE)
		return
	}
	copy(b.data[offset:], data)
	c.m.Upload(b.res, len(data), true)
}

// usageHint maps GL usage enums to the device cost table.
func usageHint(u Enum) device.VBOUsage {
	switch u {
	case DYNAMIC_DRAW:
		return device.UsageDynamicDraw
	case STREAM_DRAW:
		return device.UsageStreamDraw
	}
	return device.UsageStaticDraw
}

// EnableVertexAttribArray enables an attribute slot.
func (c *Context) EnableVertexAttribArray(index int) {
	c.apiCost()
	if index < 0 || index >= MaxVertexAttribs {
		c.setErr(INVALID_VALUE)
		return
	}
	c.attribs[index].enabled = true
}

// DisableVertexAttribArray disables an attribute slot.
func (c *Context) DisableVertexAttribArray(index int) {
	c.apiCost()
	if index < 0 || index >= MaxVertexAttribs {
		c.setErr(INVALID_VALUE)
		return
	}
	c.attribs[index].enabled = false
}

// VertexAttribPointer sources an attribute from the bound VBO, with byte
// stride and offset (glVertexAttribPointer with a buffer binding). Only
// FLOAT components are supported.
func (c *Context) VertexAttribPointer(index, size int, xtype Enum, strideBytes, offsetBytes int) {
	c.apiCost()
	if index < 0 || index >= MaxVertexAttribs || size < 1 || size > 4 {
		c.setErr(INVALID_VALUE)
		return
	}
	if xtype != FLOAT {
		c.setErr(INVALID_ENUM)
		return
	}
	if c.boundArray == 0 {
		c.setErr(INVALID_OPERATION)
		return
	}
	a := &c.attribs[index]
	a.size = size
	a.clientData = nil
	a.buffer = c.boundArray
	a.strideBytes = strideBytes
	a.offsetBytes = offsetBytes
}

// VertexAttribPointerClient sources an attribute from client memory (the
// no-VBO baseline: the driver copies the data to GPU memory on every draw,
// paper §II step 1). Stride/offset are in float32 elements.
func (c *Context) VertexAttribPointerClient(index, size int, data []float32, strideFloats, offsetFloats int) {
	c.apiCost()
	if index < 0 || index >= MaxVertexAttribs || size < 1 || size > 4 {
		c.setErr(INVALID_VALUE)
		return
	}
	a := &c.attribs[index]
	a.size = size
	a.clientData = data
	a.buffer = 0
	a.strideBytes = strideFloats * 4
	a.offsetBytes = offsetFloats * 4
}

// attribValue fetches attribute index for vertex vi. Missing components
// default to (0,0,0,1) per the GL convention. ok=false on sourcing errors.
func (c *Context) attribValue(index, vi int) ([4]float32, bool) {
	a := &c.attribs[index]
	out := [4]float32{0, 0, 0, 1}
	if !a.enabled {
		return out, true
	}
	stride := a.strideBytes
	if stride == 0 {
		stride = a.size * 4
	}
	if a.clientData != nil {
		base := a.offsetBytes/4 + vi*(stride/4)
		for i := 0; i < a.size; i++ {
			if base+i >= len(a.clientData) {
				return out, false
			}
			out[i] = a.clientData[base+i]
		}
		return out, true
	}
	b := c.buffers[a.buffer]
	if b == nil || b.data == nil {
		return out, false
	}
	base := a.offsetBytes + vi*stride
	for i := 0; i < a.size; i++ {
		off := base + i*4
		if off+4 > len(b.data) {
			return out, false
		}
		bits := uint32(b.data[off]) | uint32(b.data[off+1])<<8 |
			uint32(b.data[off+2])<<16 | uint32(b.data[off+3])<<24
		out[i] = f32FromBits(bits)
	}
	return out, true
}

// Float32Bytes converts float32 slices to the little-endian byte layout
// BufferData expects (a convenience for clients).
func Float32Bytes(vals []float32) []byte {
	out := make([]byte, len(vals)*4)
	for i, v := range vals {
		bits := f32Bits(v)
		out[i*4] = byte(bits)
		out[i*4+1] = byte(bits >> 8)
		out[i*4+2] = byte(bits >> 16)
		out[i*4+3] = byte(bits >> 24)
	}
	return out
}
