package gles

// Draw-time sampler specialization.
//
// The generic texture path (sampleTexture) re-resolves per fetch what is
// draw-constant state: completeness, mag filter, the two wrap modes, and
// the texture dimensions — and then decodes four texel bytes with four
// byte→float multiplies. A fragment program fetches per fragment, so for
// paper-sized grids that is millions of redundant state checks per draw.
//
// specializeSamplers resolves each bound texture's state once per draw and
// returns one shader.TexFunc per sampler slot:
//
//   - incomplete textures get a constant opaque-black closure (the GLES2
//     completeness rule, decided once instead of per fetch);
//   - NEAREST-magnified, CLAMP_TO_EDGE-wrapped textures — the GPGPU
//     configuration every kernel in this repository uses — get a fast path
//     with the width/height conversions precomputed, direct row-offset
//     indexing into the texel bytes, and the shared 256-entry byte→float32
//     decode table;
//   - everything else (LINEAR filtering, REPEAT wrapping) keeps a closure
//     over the generic path.
//
// Every branch is bit-identical to sampleTexture: the fast path repeats the
// exact expression shapes of wrapCoord/sampleNearest/texel (including the
// implementation-defined int(NaN) conversion, which both paths feed through
// the same clamps), and the decode table is built with the same
// float32(byte) * float32(1.0/255.0) product texel computes.

import "gles2gpgpu/internal/shader"

// byteToF32 is the shared byte→float32 decode table. Each entry holds
// exactly the value texel() computes for that byte, so table lookups are
// bit-identical to the inline multiply.
var byteToF32 [256]float32

func init() {
	const inv = 1.0 / 255.0 // the same constant texel() multiplies by
	for i := range byteToF32 {
		byteToF32[i] = float32(i) * inv
	}
}

// opaqueBlack is the incomplete-texture sample, per the GLES2 spec.
func opaqueBlack(u, v float32) shader.Vec4 { return shader.Vec4{0, 0, 0, 1} }

// specializeSampler builds the per-slot fetch function for one bound
// texture (nil for an unbound slot).
func specializeSampler(t *Texture) shader.TexFunc {
	if !texComplete(t) {
		return opaqueBlack
	}
	if t.magFilter != LINEAR && t.wrapS != REPEAT && t.wrapT != REPEAT {
		// Nearest + CLAMP_TO_EDGE on both axes: the GPGPU fast path.
		// wrapCoord treats every non-REPEAT mode as CLAMP_TO_EDGE.
		data := t.data
		w, h := t.W, t.H
		fw, fh := float32(w), float32(h)
		return func(u, v float32) shader.Vec4 {
			// wrapCoord(CLAMP_TO_EDGE): NaN falls through both compares
			// exactly as in the generic path.
			if u < 0 {
				u = 0
			} else if u > 1 {
				u = 1
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			ix := int(u * fw)
			iy := int(v * fh)
			// texel()'s index clamps: u==1 maps to ix==w, and a NaN u
			// reaches here as an implementation-defined int.
			if ix < 0 {
				ix = 0
			} else if ix >= w {
				ix = w - 1
			}
			if iy < 0 {
				iy = 0
			} else if iy >= h {
				iy = h - 1
			}
			off := (iy*w + ix) * 4
			return shader.Vec4{
				byteToF32[data[off]],
				byteToF32[data[off+1]],
				byteToF32[data[off+2]],
				byteToF32[data[off+3]],
			}
		}
	}
	// LINEAR filtering or REPEAT wrapping: keep the generic reference path.
	return func(u, v float32) shader.Vec4 {
		return shader.Vec4(sampleTexture(t, u, v))
	}
}

// NewBenchTexture builds a standalone allocated texture — not registered
// with any context or resource accounting — for the sampling
// microbenchmarks in internal/bench. data must hold w*h*4 bytes.
func NewBenchTexture(w, h int, magFilter, wrapS, wrapT Enum, data []byte) *Texture {
	return &Texture{
		W: w, H: h, data: data, allocated: true,
		minFilter: NEAREST, magFilter: magFilter, wrapS: wrapS, wrapT: wrapT,
	}
}

// GenericSampler returns the unspecialized per-fetch closure over t: the
// reference path that re-checks filter/wrap state on every fetch.
func (t *Texture) GenericSampler() shader.TexFunc {
	return func(u, v float32) shader.Vec4 {
		return shader.Vec4(sampleTexture(t, u, v))
	}
}

// SpecializedSampler returns the draw-time specialized fetch for t.
func (t *Texture) SpecializedSampler() shader.TexFunc {
	return specializeSampler(t)
}

// specializeSamplers resolves the draw's bound textures into per-slot fetch
// functions. The returned slice is installed into every Env shading the
// draw (serial and per-worker alike); texture state cannot change while a
// draw executes, and the closures only read texture state, so sharing them
// across workers is safe.
func specializeSamplers(samplers []*Texture) []shader.TexFunc {
	if len(samplers) == 0 {
		return nil
	}
	fns := make([]shader.TexFunc, len(samplers))
	for i, t := range samplers {
		fns[i] = specializeSampler(t)
	}
	return fns
}
