package gles

// Lane-batched fragment shading: the gather/scatter bridge between the
// rasteriser's per-fragment callbacks and the SoA lane engine in
// internal/shader/lanes.go.
//
// A laneShader buffers up to W covered fragments (their varyings packed
// into the SoA input banks, their pixel coordinates remembered), runs the
// whole batch through the lane-compiled program, then scatters the outputs
// back through writePixel IN GATHER ORDER. That ordering is what preserves
// bit-identity with per-fragment execution:
//
//   - Shading never reads the framebuffer, so deferring a fragment's
//     writePixel until its batch flushes cannot change what it computes.
//   - Blending reads the destination pixel at scatter time. Scattering in
//     gather order means every pixel's sequence of blend reads/writes is
//     exactly the per-fragment sequence — including two fragments of the
//     same pixel landing in one batch (both shade independently, then
//     blend in submission order at flush).
//   - A batch may therefore span triangles and tiles within one worker's
//     walk: the walk already visits fragments in the order the serial
//     engine would for each pixel, and flushing preserves it.
//
// Eligibility is gated in laneCompiledFor: the lane engine is an extension
// of the compiled backend (off when the JIT is off), needs width >= 2 to
// amortise anything, and requires the WritesBeforeReads +
// OutputsAlwaysWritten proofs because pooled LaneEnvs carry stale register
// lanes between draws exactly like pooled Envs do between fragments.
// Straight-line programs take the whole-batch engine; branchy or
// discarding programs the mask-safety proof admits (forward branches,
// per-lane discard/return — jacobi) take the divergence-masked engine
// (lanes_masked.go) when the maskedLanes knob is on; everything else runs
// per-fragment. Masked batches can discard individual lanes, so flush
// consults LaneEnv.Discarded before scattering.

import (
	"gles2gpgpu/internal/shader"
)

// laneShader batches one worker's fragments through the lane engine.
// Fields are resolved once per draw so the per-fragment add path touches
// no maps and allocates nothing.
type laneShader struct {
	c    *Context
	lc   *shader.LaneCompiled
	env  *shader.LaneEnv
	pool *shader.LaneEnvPool

	w int // batch width
	n int // gathered lanes in the current batch

	// Remembered scatter coordinates for the gathered lanes.
	px, py [shader.MaxLaneWidth]int32

	pixels []byte
	tgtW   int
	outReg int
	hasOut bool
	mask   [4]bool
	fcReg  int

	frags                 int64
	startCycles, startTex int64

	// onWrite, when set, observes every scattered (non-discarded) pixel
	// write; the coherent engine uses it to set per-tile cover bits at
	// scatter time so discarded lanes leave their pixels uncovered.
	onWrite func(px, py int32)
}

// laneCompiledFor returns the lane-batched compiled form this draw's
// fragment program executes on — the straight-line whole-batch form when
// the program allows it, else the divergence-masked form when the
// maskedLanes knob is on and the mask-safety proof admits the program —
// or nil when the lane engine does not apply (knob off, JIT off,
// width < 2, missing liveness proofs, backward branches, or an
// unsupported opcode). A nil return means callers shade per-fragment
// exactly as before.
func (c *Context) laneCompiledFor(fp *shader.Program) *shader.LaneCompiled {
	if !c.lanes || !c.jit || c.laneWidth < 2 {
		return nil
	}
	if !fp.WritesBeforeReads || !fp.OutputsAlwaysWritten {
		return nil
	}
	cost := &c.prof.CostModel
	if c.passes {
		if lc := fp.LaneCompiledOpt(cost, c.laneWidth); lc != nil {
			return lc
		}
		if c.maskedLanes {
			return fp.MaskedLaneCompiledOpt(cost, c.laneWidth)
		}
		return nil
	}
	if lc := fp.LaneCompiled(cost, c.laneWidth); lc != nil {
		return lc
	}
	if c.maskedLanes {
		return fp.MaskedLaneCompiled(cost, c.laneWidth)
	}
	return nil
}

// fsLanePoolFor returns the LaneEnv pool for the current fragment program
// at the current width, recreating it when either changes.
func (c *Context) fsLanePoolFor(fp *shader.Program) *shader.LaneEnvPool {
	if c.fsLanePool == nil || c.fsLanePool.Program() != fp || c.fsLanePool.Width() != c.laneWidth {
		c.fsLanePool = shader.NewLaneEnvPool(fp, c.laneWidth)
	}
	return c.fsLanePool
}

// newLaneShader prepares one worker's batcher for a draw: a pooled LaneEnv
// with the draw's uniforms broadcast across lanes and the samplers
// installed, plus the scatter state (target, gl_FragColor register, colour
// mask) resolved once.
func (c *Context) newLaneShader(lc *shader.LaneCompiled, pool *shader.LaneEnvPool, p *Program, tgt renderTarget, texFns []shader.TexFunc, sample shader.SampleFunc) *laneShader {
	env := pool.Get()
	env.SetUniforms(p.fsUniforms)
	env.Sample = sample
	env.Samplers = texFns
	out, hasOut := p.fsProg.LookupOutput("gl_FragColor")
	return &laneShader{
		c:           c,
		lc:          lc,
		env:         env,
		pool:        pool,
		w:           lc.Width(),
		pixels:      tgt.pixels,
		tgtW:        tgt.w,
		outReg:      out.Reg,
		hasOut:      hasOut,
		mask:        c.colorMask,
		fcReg:       p.fragCoordReg,
		startCycles: env.Cycles,
		startTex:    env.TexFetches,
	}
}

// add gathers one covered fragment into the current batch, flushing when
// the batch reaches the lane width. Varyings are copied into the SoA banks
// immediately — the rasteriser reuses its callback slice.
func (ls *laneShader) add(px, py int, fc shader.Vec4, varyings []shader.Vec4) {
	lane := ls.n
	env := ls.env
	for reg, v := range varyings {
		env.SetInput(lane, reg, v)
	}
	if ls.fcReg >= 0 {
		env.SetInput(lane, ls.fcReg, fc)
	}
	ls.px[lane] = int32(px)
	ls.py[lane] = int32(py)
	ls.n++
	if ls.n == ls.w {
		ls.flush()
	}
}

// flush runs the gathered lanes as one batch and scatters the outputs in
// gather order (see the ordering argument in the file comment).
func (ls *laneShader) flush() {
	n := ls.n
	if n == 0 {
		return
	}
	ls.n = 0
	env := ls.env
	env.N = n
	ls.lc.Run(env)
	ls.frags += int64(n)
	if !ls.hasOut {
		return
	}
	masked := ls.lc.Masked()
	for l := 0; l < n; l++ {
		if masked && env.Discarded[l] {
			continue // the lane executed a KIL: no pixel write
		}
		col := env.Output(l, ls.outReg)
		off := (int(ls.py[l])*ls.tgtW + int(ls.px[l])) * 4
		ls.c.writePixel(ls.pixels, off, col, ls.mask)
		if ls.onWrite != nil {
			ls.onWrite(ls.px[l], ls.py[l])
		}
	}
}

// finish flushes the partial final batch, returns the worker's share of
// the draw measurement, and puts the LaneEnv back in its pool.
func (ls *laneShader) finish() bandStats {
	ls.flush()
	st := bandStats{
		fragments:  ls.frags,
		cycles:     ls.env.Cycles - ls.startCycles,
		texFetches: ls.env.TexFetches - ls.startTex,
	}
	ls.pool.Put(ls.env)
	ls.env = nil
	return st
}
