package gles

import (
	"math"
	"math/rand"
	"testing"
)

// mkTex builds an allocated texture with random contents.
func mkTex(rng *rand.Rand, w, h int, minF, magF, wrapS, wrapT Enum) *Texture {
	data := make([]byte, w*h*4)
	rng.Read(data)
	return &Texture{
		W: w, H: h, data: data, allocated: true,
		minFilter: minF, magFilter: magF, wrapS: wrapS, wrapT: wrapT,
	}
}

// refWrap is the straightforward float64 wrap: REPEAT keeps the fractional
// part in [0,1), CLAMP_TO_EDGE clamps to [0,1].
func refWrap(mode Enum, x float64) float64 {
	if mode == REPEAT {
		return x - math.Floor(x)
	}
	return math.Max(0, math.Min(1, x))
}

// refIndex maps a wrapped coordinate to a texel index, clamped like the
// spec's edge rule.
func refIndex(x float64, n int) int {
	i := int(math.Floor(x * float64(n)))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// refNearest is the reference nearest-neighbour sampler.
func refNearest(t *Texture, u, v float64) (ix, iy int) {
	return refIndex(refWrap(t.wrapS, u), t.W), refIndex(refWrap(t.wrapT, v), t.H)
}

// refBilinear is the reference bilinear sampler in float64.
func refBilinear(t *Texture, u, v float64) [4]float64 {
	fu := refWrap(t.wrapS, u)*float64(t.W) - 0.5
	fv := refWrap(t.wrapT, v)*float64(t.H) - 0.5
	ix, iy := int(math.Floor(fu)), int(math.Floor(fv))
	ax, ay := fu-math.Floor(fu), fv-math.Floor(fv)
	tex := func(x, y int) [4]float64 {
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		if x >= t.W {
			x = t.W - 1
		}
		if y >= t.H {
			y = t.H - 1
		}
		off := (y*t.W + x) * 4
		var out [4]float64
		for i := 0; i < 4; i++ {
			out[i] = float64(t.data[off+i]) / 255
		}
		return out
	}
	c00, c10 := tex(ix, iy), tex(ix+1, iy)
	c01, c11 := tex(ix, iy+1), tex(ix+1, iy+1)
	var out [4]float64
	for i := 0; i < 4; i++ {
		top := c00[i]*(1-ax) + c10[i]*ax
		bot := c01[i]*(1-ax) + c11[i]*ax
		out[i] = top*(1-ay) + bot*ay
	}
	return out
}

// texelMidCoord returns a float32 coordinate aiming at the middle of texel
// i of n plus an integer period offset, far enough from texel boundaries
// that float32 rounding cannot change the selected texel.
func texelMidCoord(rng *rand.Rand, i, n, period int) float32 {
	r := 0.25 + rng.Float64()*0.5
	return float32((float64(i)+r)/float64(n) + float64(period))
}

// TestRepeatWrappingProperty drives nearest sampling with REPEAT against
// the reference sampler over many periods, including large negative
// coordinates: for coordinates aimed at texel middles the selected texel
// must match the mathematical wrap exactly.
func TestRepeatWrappingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	periods := []int{0, 1, -1, 2, -2, 17, -17, 1000, -1000, 12345, -12345}
	for trial := 0; trial < 50; trial++ {
		w, h := 1+rng.Intn(64), 1+rng.Intn(64)
		tex := mkTex(rng, w, h, NEAREST, NEAREST, REPEAT, REPEAT)
		for k := 0; k < 40; k++ {
			ix, iy := rng.Intn(w), rng.Intn(h)
			u := texelMidCoord(rng, ix, w, periods[rng.Intn(len(periods))])
			v := texelMidCoord(rng, iy, h, periods[rng.Intn(len(periods))])
			rx, ry := refNearest(tex, float64(u), float64(v))
			if rx != ix || ry != iy {
				// Period offset shifted the reference texel only if float32
				// rounding of the coordinate moved it; texelMidCoord's
				// margin forbids that for these magnitudes.
				t.Fatalf("reference disagrees with construction: (%d,%d) vs (%d,%d)", rx, ry, ix, iy)
			}
			got := sampleTexture(tex, u, v)
			off := (iy*w + ix) * 4
			const inv = 1.0 / 255.0
			for c := 0; c < 4; c++ {
				want := float32(tex.data[off+c]) * inv
				if got[c] != want {
					t.Fatalf("w=%d h=%d u=%v v=%v ch%d: got %v want %v (texel %d,%d)",
						w, h, u, v, c, got[c], want, ix, iy)
				}
			}
		}
	}
}

// TestBilinearEdgeClampProperty checks bilinear filtering against the
// float64 reference (within float32 arithmetic tolerance) with emphasis on
// the clamped edges, and checks the exact edge-extension property: with
// CLAMP_TO_EDGE, any coordinate at or beyond an edge samples identically
// to the edge itself.
func TestBilinearEdgeClampProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		w, h := 1+rng.Intn(32), 1+rng.Intn(32)
		tex := mkTex(rng, w, h, LINEAR, LINEAR, CLAMP_TO_EDGE, CLAMP_TO_EDGE)
		for k := 0; k < 60; k++ {
			var u, v float32
			switch k % 3 {
			case 0: // interior
				u, v = rng.Float32(), rng.Float32()
			case 1: // hugging the edges
				u, v = rng.Float32()*float32(1.5)/float32(w), 1-rng.Float32()*float32(1.5)/float32(h)
			default: // outside: must clamp
				u, v = -rng.Float32()*10, 1+rng.Float32()*10
			}
			got := sampleTexture(tex, u, v)
			want := refBilinear(tex, float64(u), float64(v))
			for c := 0; c < 4; c++ {
				if math.Abs(float64(got[c])-want[c]) > 4e-6 {
					t.Fatalf("w=%d h=%d u=%v v=%v ch%d: got %v want %v", w, h, u, v, c, got[c], want[c])
				}
			}
		}
		// Exact edge extension.
		for k := 0; k < 20; k++ {
			v := rng.Float32()
			lo := sampleTexture(tex, 0, v)
			for _, u := range []float32{-0.001, -1, -1e6, float32(math.Inf(-1))} {
				if got := sampleTexture(tex, u, v); got != lo {
					t.Fatalf("clamp-to-edge u=%v: got %v want %v", u, got, lo)
				}
			}
			hi := sampleTexture(tex, 1, v)
			for _, u := range []float32{1.001, 2, 1e6, float32(math.Inf(1))} {
				if got := sampleTexture(tex, u, v); got != hi {
					t.Fatalf("clamp-to-edge u=%v: got %v want %v", u, got, hi)
				}
			}
		}
	}
}

// TestSpecializedSamplerParity is the tentpole's bit-identity guarantee:
// for every filter/wrap/completeness configuration, the draw-time
// specialized sampler must return bytes bit-identical to the generic
// sampleTexture path — including NaN and infinite coordinates, exact texel
// boundaries and denormals.
func TestSpecializedSamplerParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nan := float32(math.NaN())
	adversarial := []float32{
		0, 1, -1, 0.5, nan, -nan,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.Copysign(0, -1)),
		1e-40, -1e-40, 1e20, -1e20, 1234567, -1234567,
	}
	filters := []Enum{NEAREST, LINEAR}
	wraps := []Enum{CLAMP_TO_EDGE, REPEAT}
	for _, magF := range filters {
		for _, wrapS := range wraps {
			for _, wrapT := range wraps {
				for _, minF := range []Enum{NEAREST, NEAREST_MIPMAP_LINEAR} {
					w, h := 1+rng.Intn(16), 1+rng.Intn(16)
					tex := mkTex(rng, w, h, minF, magF, wrapS, wrapT)
					fn := specializeSampler(tex)
					check := func(u, v float32) {
						got := fn(u, v)
						want := sampleTexture(tex, u, v)
						same := true
						for c := 0; c < 4; c++ {
							if math.Float32bits(got[c]) != math.Float32bits(want[c]) {
								same = false
							}
						}
						if !same {
							t.Fatalf("mag=0x%04X wrapS=0x%04X wrapT=0x%04X min=0x%04X u=%v v=%v: specialized %v generic %v",
								uint32(magF), uint32(wrapS), uint32(wrapT), uint32(minF), u, v, got, want)
						}
					}
					for _, u := range adversarial {
						for _, v := range adversarial {
							check(u, v)
						}
					}
					for k := 0; k < 200; k++ {
						check(rng.Float32()*3-1, rng.Float32()*3-1)
					}
					// Exact texel boundaries k/W, where rounding is most
					// likely to diverge between implementations.
					for k := 0; k <= w; k++ {
						for j := 0; j <= h; j++ {
							check(float32(k)/float32(w), float32(j)/float32(h))
						}
					}
				}
			}
		}
	}

	// Unbound slot and nil texture.
	if got := specializeSampler(nil)(0.5, 0.5); [4]float32(got) != [4]float32{0, 0, 0, 1} {
		t.Fatalf("nil texture: got %v, want opaque black", got)
	}
	if fns := specializeSamplers(nil); fns != nil {
		t.Fatalf("no samplers should yield nil slice")
	}
}

// TestByteDecodeTableExact pins the decode table to texel()'s expression.
func TestByteDecodeTableExact(t *testing.T) {
	const inv = 1.0 / 255.0
	for i := 0; i < 256; i++ {
		if byteToF32[i] != float32(i)*inv {
			t.Fatalf("byteToF32[%d] = %v, want %v", i, byteToF32[i], float32(i)*inv)
		}
	}
}
