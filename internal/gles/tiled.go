package gles

// Tile-binned fragment shading.
//
// The paper's platforms (VideoCore IV, PowerVR SGX) are tile-based
// deferred renderers: the hardware bins primitives into fixed-size screen
// tiles and shades tile-by-tile so the working set of framebuffer writes
// and texture reads stays on-chip. This file gives the host engine the
// same traversal. Triangles are binned once per draw into tileSize²-pixel
// tiles, the non-empty tiles are compacted into a work list, and workers
// claim tiles off an atomic counter — finishing a cheap tile immediately
// frees a worker for the next, so load balance no longer depends on
// fragment work being spread evenly across horizontal bands.
//
// Bit-identity follows the same argument as band shading (see
// parallel.go): every pixel belongs to exactly one tile, each tile walks
// ALL triangles overlapping it in submission order, so the per-pixel
// sequence of shades and blends is exactly the serial one restricted to
// that pixel. Fragment ORDER across pixels differs from serial, which is
// why the tiled path sits behind the same parallelEligible gate
// (WritesBeforeReads + OutputsAlwaysWritten prove fragments independent).
// Counters are int64 sums over fragments, so per-worker subtotals merged
// by addition reproduce the serial totals at any tile size.

import (
	"sync/atomic"

	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
)

// tileBin is one non-empty screen tile: its inclusive pixel rectangle and
// the indices of the set-up triangles whose bounding boxes overlap it, in
// submission order.
type tileBin struct {
	x0, y0, x1, y1 int
	tris           []int32
}

// binTiles bins triangle setups into tileSize-square screen tiles covering
// their joint bounding box, returning only non-empty tiles in row-major
// order. The triangle index lists come from one flat backing array sized
// by a counting pass, so binning allocates O(tiles + overlaps) regardless
// of triangle count.
func binTiles(setups []raster.Triangle, tileSize int) []tileBin {
	minX, minY := int(^uint(0)>>1), int(^uint(0)>>1)
	maxX, maxY := -minX-1, -minY-1
	for i := range setups {
		x0, y0, x1, y1 := setups[i].Bounds()
		if x0 < minX {
			minX = x0
		}
		if y0 < minY {
			minY = y0
		}
		if x1 > maxX {
			maxX = x1
		}
		if y1 > maxY {
			maxY = y1
		}
	}
	if minX > maxX || minY > maxY {
		return nil
	}
	tx0g, ty0g := minX/tileSize, minY/tileSize
	tx1g, ty1g := maxX/tileSize, maxY/tileSize
	ntx, nty := tx1g-tx0g+1, ty1g-ty0g+1

	// Counting pass: overlaps per tile.
	counts := make([]int32, ntx*nty)
	for i := range setups {
		tx0, ty0, tx1, ty1, ok := setups[i].TileRange(tileSize, tileSize)
		if !ok {
			continue
		}
		for ty := ty0; ty <= ty1; ty++ {
			row := (ty - ty0g) * ntx
			for tx := tx0; tx <= tx1; tx++ {
				counts[row+tx-tx0g]++
			}
		}
	}

	// Prefix sums into one flat index array.
	total := int32(0)
	starts := make([]int32, len(counts)+1)
	for i, n := range counts {
		starts[i] = total
		total += n
	}
	starts[len(counts)] = total
	flat := make([]int32, total)
	fill := make([]int32, len(counts))
	for i := range setups {
		tx0, ty0, tx1, ty1, ok := setups[i].TileRange(tileSize, tileSize)
		if !ok {
			continue
		}
		for ty := ty0; ty <= ty1; ty++ {
			row := (ty - ty0g) * ntx
			for tx := tx0; tx <= tx1; tx++ {
				cell := row + tx - tx0g
				flat[starts[cell]+fill[cell]] = int32(i)
				fill[cell]++
			}
		}
	}

	// Compact the non-empty tiles.
	tiles := make([]tileBin, 0, len(counts))
	for ty := 0; ty < nty; ty++ {
		for tx := 0; tx < ntx; tx++ {
			cell := ty*ntx + tx
			if counts[cell] == 0 {
				continue
			}
			px0 := (tx0g + tx) * tileSize
			py0 := (ty0g + ty) * tileSize
			tiles = append(tiles, tileBin{
				x0: px0, y0: py0, x1: px0 + tileSize - 1, y1: py0 + tileSize - 1,
				tris: flat[starts[cell]:starts[cell+1]],
			})
		}
	}
	return tiles
}

// shadeTrianglesTiled shades set-up triangles tile-by-tile, workers
// claiming tiles off an atomic counter. Returns ok=false when binning
// yields fewer than two non-empty tiles — there is nothing to balance, so
// the caller falls through to band or serial shading.
func (c *Context) shadeTrianglesTiled(p *Program, tgt renderTarget, setups []raster.Triangle, vpX, vpY int, samplers []*Texture, texFns []shader.TexFunc) (drawStats, bool) {
	tiles := binTiles(setups, c.tileSize)
	if len(tiles) < 2 {
		return drawStats{}, false
	}

	fp := p.fsProg
	out, hasOut := fp.LookupOutput("gl_FragColor")
	fcReg := p.fragCoordReg
	mask := c.colorMask
	cost := &c.prof.CostModel
	execFS := shader.Executor(fp, cost, c.jit, c.passes)
	pool := c.fsPool(fp)
	sample := envSampler(samplers)
	// Lane-batched tile shading: resolved on the draw goroutine (the pool
	// field is per-Context state), then shared read-only by the workers.
	lcfg := c.laneCompiledFor(fp)
	var lanePool *shader.LaneEnvPool
	if lcfg != nil {
		lanePool = c.fsLanePoolFor(fp)
	}

	nw := c.workers
	if nw > len(tiles) {
		nw = len(tiles)
	}
	var next int64
	results := make([]bandStats, nw)
	fns := make([]func(), nw)
	for wi := 0; wi < nw; wi++ {
		wi := wi
		fns[wi] = func() {
			if lcfg != nil {
				// Batches may span triangles and tiles within this worker's
				// walk; scatter order equals gather order, so each pixel's
				// shade/blend sequence matches the scalar tiled path.
				ls := c.newLaneShader(lcfg, lanePool, p, tgt, texFns, sample)
				for {
					ti := int(atomic.AddInt64(&next, 1)) - 1
					if ti >= len(tiles) {
						break
					}
					tile := &tiles[ti]
					for _, tri := range tile.tris {
						setups[tri].RasterizeRect(tile.x0, tile.y0, tile.x1, tile.y1, func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
							px, py := vpX+x, vpY+y
							if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
								return
							}
							ls.add(px, py, fc, varyings)
						})
					}
				}
				results[wi] = ls.finish()
				return
			}
			env := pool.Get()
			env.Uniforms = p.fsUniforms
			env.Sample = sample
			env.Samplers = texFns
			startCycles, startTex := env.Cycles, env.TexFetches
			var frags int64
			for {
				ti := int(atomic.AddInt64(&next, 1)) - 1
				if ti >= len(tiles) {
					break
				}
				tile := &tiles[ti]
				for _, tri := range tile.tris {
					setups[tri].RasterizeRect(tile.x0, tile.y0, tile.x1, tile.y1, func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
						px, py := vpX+x, vpY+y
						if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
							return
						}
						env.Discarded = false
						for reg, v := range varyings {
							env.Inputs[reg] = v
						}
						if fcReg >= 0 {
							env.Inputs[fcReg] = fc
						}
						if err := execFS(env); err != nil {
							return
						}
						frags++
						if env.Discarded || !hasOut {
							return
						}
						c.writePixel(tgt.pixels, (py*tgt.w+px)*4, env.Outputs[out.Reg], mask)
					})
				}
			}
			results[wi] = bandStats{frags, env.Cycles - startCycles, env.TexFetches - startTex}
			pool.Put(env)
		}
	}
	c.ensurePool().run(fns)

	st := drawStats{valid: true}
	for _, r := range results {
		st.fragments += r.fragments
		st.cycles += r.cycles
		st.texFetches += r.texFetches
	}
	return st, true
}
