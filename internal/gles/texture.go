package gles

import "fmt"

// GenTexture creates a texture name (glGenTextures with n=1; call
// repeatedly for more).
func (c *Context) GenTexture() uint32 {
	c.apiCost()
	name := c.genName()
	c.textures[name] = &Texture{
		name:      name,
		minFilter: NEAREST_MIPMAP_LINEAR, // GL default: mipmapping on
		magFilter: LINEAR,
		wrapS:     REPEAT,
		wrapT:     REPEAT,
	}
	return name
}

// BindTexture binds a texture to the active unit.
func (c *Context) BindTexture(target Enum, name uint32) {
	c.apiCost()
	if target != TEXTURE_2D {
		c.setErr(INVALID_ENUM)
		return
	}
	if name != 0 {
		if _, ok := c.textures[name]; !ok {
			// GLES allows binding fresh names from glGenTextures only;
			// unknown names are client bugs here.
			c.setErr(INVALID_OPERATION)
			return
		}
	}
	c.boundTex[c.activeTexture] = name
}

// DeleteTexture deletes a texture object.
func (c *Context) DeleteTexture(name uint32) {
	c.apiCost()
	t, ok := c.textures[name]
	if !ok {
		return
	}
	if t.allocated {
		_ = c.alloc.Free(t.alloc)
		c.m.FreeResource(t.res)
	}
	delete(c.textures, name)
	for i := range c.boundTex {
		if c.boundTex[i] == name {
			c.boundTex[i] = 0
		}
	}
}

func (c *Context) activeTex2D() *Texture {
	name := c.boundTex[c.activeTexture]
	if name == 0 {
		return nil
	}
	return c.textures[name]
}

// TexParameteri sets texture filtering/wrapping state.
func (c *Context) TexParameteri(target, pname, param Enum) {
	c.apiCost()
	if target != TEXTURE_2D {
		c.setErr(INVALID_ENUM)
		return
	}
	t := c.activeTex2D()
	if t == nil {
		c.setErr(INVALID_OPERATION)
		return
	}
	switch pname {
	case TEXTURE_MIN_FILTER:
		t.minFilter = param
	case TEXTURE_MAG_FILTER:
		t.magFilter = param
	case TEXTURE_WRAP_S:
		t.wrapS = param
	case TEXTURE_WRAP_T:
		t.wrapT = param
	default:
		c.setErr(INVALID_ENUM)
	}
}

// TexImage2D defines level-0 storage and optionally uploads data.
//
// The driver allocates *fresh* GPU-managed storage every time (paper §II
// "Texture Loading": the allocation can consume a significant time
// portion). Passing nil data allocates without the upload. Only
// RGBA/UNSIGNED_BYTE level 0 is supported, the format the [13] GPGPU
// encoding uses.
func (c *Context) TexImage2D(target Enum, level int, internalFormat Enum, w, h int, format, xtype Enum, data []byte) {
	c.apiCost()
	if target != TEXTURE_2D {
		c.setErr(INVALID_ENUM)
		return
	}
	if level != 0 {
		c.setErr(INVALID_VALUE) // mip levels unsupported in the subset
		return
	}
	if internalFormat != RGBA || format != RGBA || xtype != UNSIGNED_BYTE {
		c.setErr(INVALID_ENUM)
		return
	}
	if w <= 0 || h <= 0 {
		c.setErr(INVALID_VALUE)
		return
	}
	t := c.activeTex2D()
	if t == nil {
		c.setErr(INVALID_OPERATION)
		return
	}
	size := w * h * 4
	if data != nil && len(data) < size {
		c.setErr(INVALID_OPERATION)
		return
	}
	// Orphan previous storage (driver "ghosting"): new ResID means no
	// write-after-read hazard against readers of the old image.
	if t.allocated {
		_ = c.alloc.Free(t.alloc)
		c.m.FreeResource(t.res)
	}
	a, cost := c.alloc.Alloc(size, fmt.Sprintf("tex%d %dx%d", t.name, w, h))
	c.m.AllocCost(cost)
	t.alloc = a
	t.res = c.m.NewResource(fmt.Sprintf("tex%d", t.name))
	t.W, t.H = w, h
	t.allocated = true
	if !c.timingOnly {
		t.data = make([]byte, size)
		if data != nil {
			copy(t.data, data[:size])
		}
	}
	if data != nil {
		c.m.Upload(t.res, size, false)
	}
}

// TexSubImage2D updates a region of existing storage without reallocating
// (the paper's texture-reuse optimisation). The update is a write into
// live storage, so it carries the write-after-read hazard Fig. 5 explores.
func (c *Context) TexSubImage2D(target Enum, level, x, y, w, h int, format, xtype Enum, data []byte) {
	c.apiCost()
	if target != TEXTURE_2D {
		c.setErr(INVALID_ENUM)
		return
	}
	if level != 0 || format != RGBA || xtype != UNSIGNED_BYTE {
		c.setErr(INVALID_ENUM)
		return
	}
	t := c.activeTex2D()
	if t == nil || !t.allocated {
		c.setErr(INVALID_OPERATION)
		return
	}
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > t.W || y+h > t.H {
		c.setErr(INVALID_VALUE)
		return
	}
	size := w * h * 4
	if data == nil || len(data) < size {
		c.setErr(INVALID_OPERATION)
		return
	}
	if !c.timingOnly {
		for row := 0; row < h; row++ {
			dst := ((y+row)*t.W + x) * 4
			src := row * w * 4
			copy(t.data[dst:dst+w*4], data[src:src+w*4])
		}
	}
	c.alloc.NoteSubUpdate(size)
	c.m.Upload(t.res, size, true)
}

// texComplete reports whether a texture can be sampled (GLES2 completeness:
// allocated storage and a non-mipmapped min filter, since the subset has no
// mip chains).
func texComplete(t *Texture) bool {
	if t == nil || !t.allocated {
		return false
	}
	return t.minFilter == NEAREST || t.minFilter == LINEAR
}

// sampleTexture fetches (u,v) with the texture's filter and wrap modes.
// Incomplete textures sample opaque black, per the GLES2 spec.
func sampleTexture(t *Texture, u, v float32) [4]float32 {
	if !texComplete(t) {
		return [4]float32{0, 0, 0, 1}
	}
	if t.magFilter == LINEAR {
		return sampleBilinear(t, u, v)
	}
	return sampleNearest(t, u, v)
}

func wrapCoord(mode Enum, x float32) float32 {
	switch mode {
	case REPEAT:
		f := x - float32(int(x))
		if f < 0 {
			f += 1
		}
		return f
	default: // CLAMP_TO_EDGE
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
}

func texel(t *Texture, ix, iy int) [4]float32 {
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	if ix >= t.W {
		ix = t.W - 1
	}
	if iy >= t.H {
		iy = t.H - 1
	}
	off := (iy*t.W + ix) * 4
	const inv = 1.0 / 255.0
	return [4]float32{
		float32(t.data[off]) * inv,
		float32(t.data[off+1]) * inv,
		float32(t.data[off+2]) * inv,
		float32(t.data[off+3]) * inv,
	}
}

func sampleNearest(t *Texture, u, v float32) [4]float32 {
	u = wrapCoord(t.wrapS, u)
	v = wrapCoord(t.wrapT, v)
	ix := int(u * float32(t.W))
	iy := int(v * float32(t.H))
	return texel(t, ix, iy)
}

func sampleBilinear(t *Texture, u, v float32) [4]float32 {
	u = wrapCoord(t.wrapS, u)
	v = wrapCoord(t.wrapT, v)
	fx := u*float32(t.W) - 0.5
	fy := v*float32(t.H) - 0.5
	ix, iy := int(floorf(fx)), int(floorf(fy))
	ax, ay := fx-floorf(fx), fy-floorf(fy)
	c00 := texel(t, ix, iy)
	c10 := texel(t, ix+1, iy)
	c01 := texel(t, ix, iy+1)
	c11 := texel(t, ix+1, iy+1)
	var out [4]float32
	for i := 0; i < 4; i++ {
		top := c00[i]*(1-ax) + c10[i]*ax
		bot := c01[i]*(1-ax) + c11[i]*ax
		out[i] = top*(1-ay) + bot*ay
	}
	return out
}

func floorf(x float32) float32 {
	i := float32(int(x))
	if x < i {
		return i - 1
	}
	return i
}

// BoundTexture returns the texture bound to the active unit (the
// GL_TEXTURE_BINDING_2D query), letting clients save/restore bindings
// around texture-management calls.
func (c *Context) BoundTexture() uint32 { return c.boundTex[c.activeTexture] }

// TextureData returns the functional contents for verification in tests
// (not part of the GL API).
func (c *Context) TextureData(name uint32) []byte {
	if t, ok := c.textures[name]; ok {
		return t.data
	}
	return nil
}
