package gles

import (
	"strings"
	"testing"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/egl"
	"gles2gpgpu/internal/timing"
)

// testEnv bundles a display, surface and GLES context.
type testEnv struct {
	disp *egl.Display
	surf *egl.Surface
	ectx *egl.Context
	gl   *Context
}

func newEnv(t *testing.T, prof *device.Profile, w, h int, window bool) *testEnv {
	t.Helper()
	d := egl.GetDisplay(prof)
	d.Initialize()
	var s *egl.Surface
	var err error
	if window {
		s, err = d.CreateWindowSurface(w, h)
	} else {
		s, err = d.CreatePbufferSurface(w, h)
	}
	if err != nil {
		t.Fatal(err)
	}
	ec, err := d.CreateContext()
	if err != nil {
		t.Fatal(err)
	}
	if err := ec.MakeCurrent(s); err != nil {
		t.Fatal(err)
	}
	gl := NewContext(ec)
	return &testEnv{disp: d, surf: s, ectx: ec, gl: gl}
}

const quadVS = `
attribute vec2 a_pos;
varying vec2 v_tex;
void main() {
	gl_Position = vec4(a_pos, 0.0, 1.0);
	v_tex = a_pos * 0.5 + 0.5;
}`

// buildProgram compiles and links, failing the test on errors.
func buildProgram(t *testing.T, gl *Context, vsSrc, fsSrc string) uint32 {
	t.Helper()
	vs := gl.CreateShader(VERTEX_SHADER)
	gl.ShaderSource(vs, vsSrc)
	gl.CompileShader(vs)
	if gl.GetShaderiv(vs, COMPILE_STATUS) != 1 {
		t.Fatalf("vertex shader: %s", gl.GetShaderInfoLog(vs))
	}
	fs := gl.CreateShader(FRAGMENT_SHADER)
	gl.ShaderSource(fs, fsSrc)
	gl.CompileShader(fs)
	if gl.GetShaderiv(fs, COMPILE_STATUS) != 1 {
		t.Fatalf("fragment shader: %s", gl.GetShaderInfoLog(fs))
	}
	p := gl.CreateProgram()
	gl.AttachShader(p, vs)
	gl.AttachShader(p, fs)
	gl.LinkProgram(p)
	if gl.GetProgramiv(p, LINK_STATUS) != 1 {
		t.Fatalf("link: %s", gl.GetProgramInfoLog(p))
	}
	return p
}

// drawQuad issues a full-screen quad with client-side vertex data.
func drawQuad(t *testing.T, gl *Context, prog uint32) {
	t.Helper()
	gl.UseProgram(prog)
	loc := gl.GetAttribLocation(prog, "a_pos")
	if loc < 0 {
		t.Fatal("a_pos not found")
	}
	quad := []float32{-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1}
	gl.EnableVertexAttribArray(loc)
	gl.VertexAttribPointerClient(loc, 2, quad, 0, 0)
	gl.DrawArrays(TRIANGLES, 0, 6)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("draw error: %s", ErrName(e))
	}
}

func TestClearAndReadPixels(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	gl.ClearColor(1, 0.5, 0, 1)
	gl.Clear(COLOR_BUFFER_BIT)
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("error: %s", ErrName(e))
	}
	if buf[0] != 255 || buf[1] != 128 || buf[2] != 0 || buf[3] != 255 {
		t.Errorf("pixel = %v, want (255,128,0,255)", buf[:4])
	}
}

func TestDrawConstantColor(t *testing.T) {
	env := newEnv(t, device.Generic(), 16, 16, false)
	gl := env.gl
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(0.25, 0.5, 0.75, 1.0); }`)
	drawQuad(t, gl, p)
	buf := make([]byte, 16*16*4)
	gl.ReadPixels(0, 0, 16, 16, RGBA, UNSIGNED_BYTE, buf)
	for i := 0; i < len(buf); i += 4 {
		if buf[i] != 64 || buf[i+1] != 128 || buf[i+2] != 191 || buf[i+3] != 255 {
			t.Fatalf("pixel %d = %v", i/4, buf[i:i+4])
		}
	}
}

func TestVaryingGradient(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main(){ gl_FragColor = vec4(v_tex, 0.0, 1.0); }`)
	drawQuad(t, gl, p)
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	// Pixel (0,0) center → v_tex = (0.5/8, 0.5/8) ≈ 0.0625 → byte 16.
	if got := buf[0]; got < 14 || got > 18 {
		t.Errorf("corner red = %d, want ~16", got)
	}
	// Pixel (7,0): u = 7.5/8 = 0.9375 → byte 239.
	if got := buf[7*4]; got < 237 || got > 241 {
		t.Errorf("edge red = %d, want ~239", got)
	}
	// v increases with y.
	if buf[7*8*4+1] <= buf[1] {
		t.Error("green channel did not increase with y")
	}
}

func TestTextureSampling(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MIN_FILTER, NEAREST)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, NEAREST)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_S, CLAMP_TO_EDGE)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_T, CLAMP_TO_EDGE)
	data := make([]byte, 4*4*4)
	for i := range data {
		data[i] = byte(i)
	}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 4, 4, RGBA, UNSIGNED_BYTE, data)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D tex;
varying vec2 v_tex;
void main(){ gl_FragColor = texture2D(tex, v_tex); }`)
	gl.UseProgram(p)
	gl.Uniform1i(gl.GetUniformLocation(p, "tex"), 0)
	drawQuad(t, gl, p)
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	// 4x4 target sampling a 4x4 texture 1:1 with NEAREST: identity copy.
	for i := range buf {
		if buf[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], data[i])
		}
	}
}

func TestRenderToTextureAndSample(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	// Pass 1: render 0.5 into a texture via FBO.
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MIN_FILTER, NEAREST)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, NEAREST)
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 8, 8, RGBA, UNSIGNED_BYTE, nil)
	fbo := gl.GenFramebuffer()
	gl.BindFramebuffer(FRAMEBUFFER, fbo)
	gl.FramebufferTexture2D(FRAMEBUFFER, COLOR_ATTACHMENT0, TEXTURE_2D, tex, 0)
	if st := gl.CheckFramebufferStatus(FRAMEBUFFER); st != FRAMEBUFFER_COMPLETE {
		t.Fatalf("fbo status %x", st)
	}
	p1 := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(0.5); }`)
	drawQuad(t, gl, p1)
	// Pass 2: sample it, doubled, to the default framebuffer.
	gl.BindFramebuffer(FRAMEBUFFER, 0)
	p2 := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D tex;
varying vec2 v_tex;
void main(){ gl_FragColor = texture2D(tex, v_tex) * 2.0; }`)
	gl.UseProgram(p2)
	gl.Uniform1i(gl.GetUniformLocation(p2, "tex"), 0)
	drawQuad(t, gl, p2)
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	// 0.5 stored as 128/255, doubled = 1.004 → clamped 255.
	if buf[0] != 255 {
		t.Errorf("pixel = %d, want 255", buf[0])
	}
}

func TestCopyTexImage2DFunctional(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	gl.ClearColor(0.2, 0.4, 0.6, 1)
	gl.Clear(COLOR_BUFFER_BIT)
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.CopyTexImage2D(TEXTURE_2D, 0, RGBA, 0, 0, 8, 8, 0)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("copy error: %s", ErrName(e))
	}
	data := gl.TextureData(tex)
	if len(data) != 8*8*4 {
		t.Fatalf("texture data %d bytes", len(data))
	}
	if data[0] != 51 || data[1] != 102 || data[2] != 153 {
		t.Errorf("copied pixel = %v", data[:4])
	}
	// Sub-variant into existing storage.
	gl.ClearColor(1, 1, 1, 1)
	gl.Clear(COLOR_BUFFER_BIT)
	gl.CopyTexSubImage2D(TEXTURE_2D, 0, 0, 0, 0, 0, 4, 4)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("subcopy error: %s", ErrName(e))
	}
	data = gl.TextureData(tex)
	if data[0] != 255 {
		t.Error("sub-copy did not update texel (0,0)")
	}
	// Outside the 4x4 region: old value.
	off := (5*8 + 5) * 4
	if data[off] != 51 {
		t.Error("sub-copy overwrote outside its region")
	}
}

func TestVBODrawPath(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0); }`)
	gl.UseProgram(p)
	vbo := gl.GenBuffer()
	gl.BindBuffer(ARRAY_BUFFER, vbo)
	quad := []float32{-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1}
	gl.BufferData(ARRAY_BUFFER, Float32Bytes(quad), STATIC_DRAW)
	loc := gl.GetAttribLocation(p, "a_pos")
	gl.EnableVertexAttribArray(loc)
	gl.VertexAttribPointer(loc, 2, FLOAT, 0, 0)
	gl.DrawArrays(TRIANGLES, 0, 6)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("vbo draw error: %s", ErrName(e))
	}
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 255 {
		t.Error("vbo draw produced nothing")
	}
}

func TestTriangleStripAndFan(t *testing.T) {
	for _, mode := range []Enum{TRIANGLE_STRIP, TRIANGLE_FAN} {
		env := newEnv(t, device.Generic(), 8, 8, false)
		gl := env.gl
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0); }`)
		gl.UseProgram(p)
		var quad []float32
		if mode == TRIANGLE_STRIP {
			quad = []float32{-1, -1, 1, -1, -1, 1, 1, 1}
		} else {
			quad = []float32{-1, -1, 1, -1, 1, 1, -1, 1}
		}
		loc := gl.GetAttribLocation(p, "a_pos")
		gl.EnableVertexAttribArray(loc)
		gl.VertexAttribPointerClient(loc, 2, quad, 0, 0)
		gl.DrawArrays(mode, 0, 4)
		buf := make([]byte, 8*8*4)
		gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
		for i := 0; i < len(buf); i += 4 {
			if buf[i] != 255 {
				t.Fatalf("mode %x: pixel %d uncovered", mode, i/4)
			}
		}
	}
}

func TestColorMaskFP24(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	gl.ClearColor(0, 0, 0, 0)
	gl.Clear(COLOR_BUFFER_BIT)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0); }`)
	gl.ColorMask(true, true, true, false)
	drawQuad(t, gl, p)
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 255 || buf[3] != 0 {
		t.Errorf("pixel = %v, want alpha preserved at 0", buf[:4])
	}
}

func TestLinkErrors(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	// Fragment shader consumes a varying the VS does not write.
	vs := gl.CreateShader(VERTEX_SHADER)
	gl.ShaderSource(vs, `
attribute vec2 a_pos;
void main(){ gl_Position = vec4(a_pos, 0.0, 1.0); }`)
	gl.CompileShader(vs)
	fs := gl.CreateShader(FRAGMENT_SHADER)
	gl.ShaderSource(fs, `
precision mediump float;
varying vec2 v_missing;
void main(){ gl_FragColor = vec4(v_missing, 0.0, 1.0); }`)
	gl.CompileShader(fs)
	p := gl.CreateProgram()
	gl.AttachShader(p, vs)
	gl.AttachShader(p, fs)
	gl.LinkProgram(p)
	if gl.GetProgramiv(p, LINK_STATUS) != 0 {
		t.Fatal("link succeeded with unmatched varying")
	}
	if !strings.Contains(gl.GetProgramInfoLog(p), "v_missing") {
		t.Errorf("log: %s", gl.GetProgramInfoLog(p))
	}
}

func TestCompileLimitFailure(t *testing.T) {
	// VideoCore profile allows 40 texture accesses: a 64-iteration
	// texture loop must fail to compile, like the paper's block-32 sgemm.
	env := newEnv(t, device.VideoCoreIV(), 4, 4, false)
	gl := env.gl
	fs := gl.CreateShader(FRAGMENT_SHADER)
	gl.ShaderSource(fs, `
precision mediump float;
uniform sampler2D t0;
varying vec2 v_tex;
void main(){
	float acc = 0.0;
	for (int i = 0; i < 64; i++) { acc += texture2D(t0, v_tex).x; }
	gl_FragColor = vec4(acc);
}`)
	gl.CompileShader(fs)
	if gl.GetShaderiv(fs, COMPILE_STATUS) != 0 {
		t.Fatal("shader exceeding texture-access limit compiled")
	}
	if !strings.Contains(gl.GetShaderInfoLog(fs), "limit") {
		t.Errorf("log: %s", gl.GetShaderInfoLog(fs))
	}
}

func TestErrorModel(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	gl.DrawArrays(TRIANGLES, 0, 3) // no program
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("draw without program: %s", ErrName(e))
	}
	if e := gl.GetError(); e != NO_ERROR {
		t.Error("GetError did not clear")
	}
	gl.BindTexture(TEXTURE_2D, 9999)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("bad bind: %s", ErrName(e))
	}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, -1, 4, RGBA, UNSIGNED_BYTE, nil)
	if e := gl.GetError(); e == NO_ERROR {
		t.Error("negative size accepted")
	}
	// Incomplete FBO draws fail.
	fbo := gl.GenFramebuffer()
	gl.BindFramebuffer(FRAMEBUFFER, fbo)
	if st := gl.CheckFramebufferStatus(FRAMEBUFFER); st == FRAMEBUFFER_COMPLETE {
		t.Error("empty FBO reported complete")
	}
}

func TestTimingOnlyReplayMatchesFunctional(t *testing.T) {
	run := func(iters int, timingOnlyAfterFirst bool) timing.Time {
		env := newEnv(t, device.Generic(), 32, 32, false)
		gl := env.gl
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main(){ gl_FragColor = vec4(v_tex, 0.5, 1.0); }`)
		gl.UseProgram(p)
		loc := gl.GetAttribLocation(p, "a_pos")
		quad := []float32{-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1}
		gl.EnableVertexAttribArray(loc)
		gl.VertexAttribPointerClient(loc, 2, quad, 0, 0)
		for i := 0; i < iters; i++ {
			if timingOnlyAfterFirst && i == 1 {
				gl.SetTimingOnly(true)
			}
			gl.Clear(COLOR_BUFFER_BIT)
			gl.DrawArrays(TRIANGLES, 0, 6)
		}
		gl.Finish()
		return gl.Machine().Now()
	}
	full := run(6, false)
	replay := run(6, true)
	if full != replay {
		t.Errorf("timing-only replay %v != functional %v", replay, full)
	}
}

func TestTextureReuseAvoidsAllocation(t *testing.T) {
	env := newEnv(t, device.VideoCoreIV(), 8, 8, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	data := make([]byte, 8*8*4)
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 8, 8, RGBA, UNSIGNED_BYTE, data)
	allocs := gl.Allocator().TotalAllocs
	gl.TexSubImage2D(TEXTURE_2D, 0, 0, 0, 8, 8, RGBA, UNSIGNED_BYTE, data)
	if gl.Allocator().TotalAllocs != allocs {
		t.Error("TexSubImage2D allocated")
	}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 8, 8, RGBA, UNSIGNED_BYTE, data)
	if gl.Allocator().TotalAllocs != allocs+1 {
		t.Error("TexImage2D did not reallocate")
	}
	if gl.Allocator().LiveCount() != 1 {
		t.Errorf("live allocations = %d, want 1 (old storage orphaned)", gl.Allocator().LiveCount())
	}
}

func TestGetString(t *testing.T) {
	env := newEnv(t, device.PowerVRSGX545(), 4, 4, false)
	gl := env.gl
	if !strings.Contains(gl.GetString(0x1F01), "SGX") {
		t.Error("renderer string wrong")
	}
	if !strings.Contains(gl.GetString(0x1F03), "GL_EXT_discard_framebuffer") {
		t.Error("extensions string missing discard")
	}
}
