package gles

import (
	"testing"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/egl"
	"gles2gpgpu/internal/timing"
)

// Second coverage pass: uniform setters, sampling modes, sub-resources,
// deletion semantics and driver-timing behaviours not exercised by the
// main integration tests.

func TestUniformSetters(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform float f1;
uniform vec2 f2;
uniform vec3 f3;
uniform vec4 f4;
uniform float arr[3];
uniform vec4 varr[2];
uniform mat4 m4;
uniform mat2 m2;
void main(){
	float s = f1 + f2.y + f3.z + f4.w + arr[2] + varr[1].x;
	vec4 mcol = m4[3] + vec4(m2[1], 0.0, 0.0);
	gl_FragColor = vec4((s + mcol.x) / 16.0);
}`)
	gl.UseProgram(p)
	gl.Uniform1f(gl.GetUniformLocation(p, "f1"), 1)
	gl.Uniform2f(gl.GetUniformLocation(p, "f2"), 0, 2)
	gl.Uniform3f(gl.GetUniformLocation(p, "f3"), 0, 0, 3)
	gl.Uniform4f(gl.GetUniformLocation(p, "f4"), 0, 0, 0, 4)
	gl.Uniform1fv(gl.GetUniformLocation(p, "arr"), []float32{9, 9, 5})
	gl.Uniform4fv(gl.GetUniformLocation(p, "varr"), []float32{9, 9, 9, 9, 6, 0, 0, 0})
	m4 := make([]float32, 16)
	m4[12] = 7 // column 3, row 0
	gl.UniformMatrix4fv(gl.GetUniformLocation(p, "m4"), m4)
	gl.UniformMatrix2fv(gl.GetUniformLocation(p, "m2"), []float32{0, 0, 8, 0}) // column 1 = (8,0)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("uniform setting error: %s", ErrName(e))
	}
	drawQuad(t, gl, p)
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	// (1+2+3+4+5+6 + 7+8)/16 = 36/16 = 2.25 -> clamped... recompute:
	// s = 21, mcol.x = m4[3].x + m2[1].x = 7 + 8 = 15; (21+15)/16 = 2.25
	// clamps to 1.0 -> 255.
	if buf[0] != 255 {
		t.Errorf("pixel = %d, want saturated 255", buf[0])
	}
}

func TestUniformErrors(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D s;
uniform float f;
void main(){ gl_FragColor = texture2D(s, vec2(f)); }`)
	gl.UseProgram(p)
	// Location -1 is silently ignored.
	gl.Uniform1f(-1, 3)
	if e := gl.GetError(); e != NO_ERROR {
		t.Errorf("Uniform1f(-1) raised %s", ErrName(e))
	}
	// Setting a sampler with Uniform1f is invalid.
	gl.Uniform1f(gl.GetUniformLocation(p, "s"), 1)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("Uniform1f on sampler: %s", ErrName(e))
	}
	// Sampler unit out of range.
	gl.Uniform1i(gl.GetUniformLocation(p, "s"), 99)
	if e := gl.GetError(); e != INVALID_VALUE {
		t.Errorf("Uniform1i(99): %s", ErrName(e))
	}
	// Unknown location.
	gl.Uniform1f(12345, 0)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("bogus location: %s", ErrName(e))
	}
	// UniformMatrix with short data.
	gl.UniformMatrix4fv(gl.GetUniformLocation(p, "f"), []float32{1, 2})
	if e := gl.GetError(); e != INVALID_VALUE {
		t.Errorf("short matrix: %s", ErrName(e))
	}
	// No current program.
	gl.UseProgram(0)
	gl.Uniform1f(1, 0)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("uniform without program: %s", ErrName(e))
	}
}

func TestMultiUnitSampling(t *testing.T) {
	env := newEnv(t, device.Generic(), 2, 2, false)
	gl := env.gl
	mkTex := func(val byte) uint32 {
		tex := gl.GenTexture()
		gl.BindTexture(TEXTURE_2D, tex)
		gl.TexParameteri(TEXTURE_2D, TEXTURE_MIN_FILTER, NEAREST)
		gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, NEAREST)
		data := make([]byte, 2*2*4)
		for i := range data {
			data[i] = val
		}
		gl.TexImage2D(TEXTURE_2D, 0, RGBA, 2, 2, RGBA, UNSIGNED_BYTE, data)
		return tex
	}
	t0 := mkTex(100)
	t1 := mkTex(200)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D texA;
uniform sampler2D texB;
varying vec2 v_tex;
void main(){
	gl_FragColor = vec4(texture2D(texA, v_tex).r, texture2D(texB, v_tex).r, 0.0, 1.0);
}`)
	gl.UseProgram(p)
	gl.ActiveTexture(TEXTURE0 + 3)
	gl.BindTexture(TEXTURE_2D, t0)
	gl.ActiveTexture(TEXTURE0 + 5)
	gl.BindTexture(TEXTURE_2D, t1)
	gl.ActiveTexture(TEXTURE0)
	gl.Uniform1i(gl.GetUniformLocation(p, "texA"), 3)
	gl.Uniform1i(gl.GetUniformLocation(p, "texB"), 5)
	drawQuad(t, gl, p)
	buf := make([]byte, 2*2*4)
	gl.ReadPixels(0, 0, 2, 2, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 100 || buf[1] != 200 {
		t.Errorf("pixel = %v, want r=100 g=200", buf[:4])
	}
}

func TestIncompleteTextureSamplesBlack(t *testing.T) {
	env := newEnv(t, device.Generic(), 2, 2, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	// Default min filter uses mipmaps; no mip chain exists -> incomplete.
	data := []byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 2, 2, RGBA, UNSIGNED_BYTE, data)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D s;
varying vec2 v_tex;
void main(){ gl_FragColor = texture2D(s, v_tex); }`)
	gl.UseProgram(p)
	gl.Uniform1i(gl.GetUniformLocation(p, "s"), 0)
	drawQuad(t, gl, p)
	buf := make([]byte, 2*2*4)
	gl.ReadPixels(0, 0, 2, 2, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 0 || buf[3] != 255 {
		t.Errorf("incomplete texture sampled %v, want opaque black", buf[:4])
	}
}

func TestWrapModesAndBilinear(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MIN_FILTER, NEAREST)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, NEAREST)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_S, REPEAT)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_T, REPEAT)
	// 2x1-ish gradient in a 2x2 texture: left texels 0, right texels 200.
	data := []byte{
		0, 0, 0, 255, 200, 0, 0, 255,
		0, 0, 0, 255, 200, 0, 0, 255,
	}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 2, 2, RGBA, UNSIGNED_BYTE, data)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D s;
varying vec2 v_tex;
void main(){ gl_FragColor = texture2D(s, v_tex + vec2(1.0, 0.0)); }`)
	gl.UseProgram(p)
	gl.Uniform1i(gl.GetUniformLocation(p, "s"), 0)
	drawQuad(t, gl, p)
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	// REPEAT: coord+1.0 wraps to the same texel; left half samples 0.
	if buf[0] != 0 {
		t.Errorf("REPEAT wrap: pixel = %d, want 0", buf[0])
	}
	if buf[3*4] != 200 {
		t.Errorf("REPEAT wrap right half = %d, want 200", buf[3*4])
	}
	// Bilinear magnification between the two columns.
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, LINEAR)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_S, CLAMP_TO_EDGE)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_T, CLAMP_TO_EDGE)
	p2 := buildProgram(t, gl, quadVS, `
precision mediump float;
uniform sampler2D s;
void main(){ gl_FragColor = texture2D(s, vec2(0.5, 0.5)); }`)
	gl.UseProgram(p2)
	gl.Uniform1i(gl.GetUniformLocation(p2, "s"), 0)
	drawQuad(t, gl, p2)
	gl.ReadPixels(0, 0, 1, 1, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] < 95 || buf[0] > 105 {
		t.Errorf("bilinear midpoint = %d, want ~100", buf[0])
	}
}

func TestBufferSubData(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	vbo := gl.GenBuffer()
	gl.BindBuffer(ARRAY_BUFFER, vbo)
	gl.BufferData(ARRAY_BUFFER, Float32Bytes([]float32{1, 2, 3, 4}), DYNAMIC_DRAW)
	gl.BufferSubData(ARRAY_BUFFER, 4, Float32Bytes([]float32{9}))
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("BufferSubData: %s", ErrName(e))
	}
	// Out of range.
	gl.BufferSubData(ARRAY_BUFFER, 14, Float32Bytes([]float32{9}))
	if e := gl.GetError(); e != INVALID_VALUE {
		t.Errorf("oversized BufferSubData: %s", ErrName(e))
	}
	// No buffer bound.
	gl.BindBuffer(ARRAY_BUFFER, 0)
	gl.BufferSubData(ARRAY_BUFFER, 0, []byte{1})
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("BufferSubData without binding: %s", ErrName(e))
	}
	// Bad usage hint.
	gl.BindBuffer(ARRAY_BUFFER, vbo)
	gl.BufferData(ARRAY_BUFFER, []byte{0}, Enum(0x1234))
	if e := gl.GetError(); e != INVALID_ENUM {
		t.Errorf("bad usage: %s", ErrName(e))
	}
}

func TestDeleteSemantics(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 4, 4, RGBA, UNSIGNED_BYTE, make([]byte, 64))
	live := gl.Allocator().LiveCount()
	gl.DeleteTexture(tex)
	if gl.Allocator().LiveCount() != live-1 {
		t.Error("texture deletion leaked GPU memory")
	}
	if gl.BoundTexture() != 0 {
		t.Error("deleted texture still bound")
	}
	// Deleting twice is harmless (GL semantics).
	gl.DeleteTexture(tex)
	if e := gl.GetError(); e != NO_ERROR {
		t.Errorf("double delete: %s", ErrName(e))
	}
	vbo := gl.GenBuffer()
	gl.BindBuffer(ARRAY_BUFFER, vbo)
	gl.BufferData(ARRAY_BUFFER, []byte{1, 2, 3, 4}, STATIC_DRAW)
	gl.DeleteBuffer(vbo)
	gl.DeleteBuffer(vbo)
	fbo := gl.GenFramebuffer()
	gl.BindFramebuffer(FRAMEBUFFER, fbo)
	gl.DeleteFramebuffer(fbo)
	// Binding reset to default framebuffer.
	if _, ok := env.gl.currentTarget(); !ok {
		t.Error("default framebuffer lost after FBO deletion")
	}
	sh := gl.CreateShader(FRAGMENT_SHADER)
	gl.DeleteShader(sh)
	pr := gl.CreateProgram()
	gl.DeleteProgram(pr)
	if e := gl.GetError(); e != NO_ERROR {
		t.Errorf("delete pass: %s", ErrName(e))
	}
}

func TestDiscardFramebufferEXT(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	m := gl.Machine()
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(0.5); }`)
	// Without invalidation: the second draw loads tiles.
	drawQuad(t, gl, p)
	drawQuad(t, gl, p)
	loadsBefore := m.Stats.TileLoads
	if loadsBefore == 0 {
		t.Fatal("expected tile loads on preserved target")
	}
	// With discard: no loads for the next draw.
	gl.DiscardFramebufferEXT(FRAMEBUFFER, []Enum{COLOR_ATTACHMENT0})
	drawQuad(t, gl, p)
	if m.Stats.TileLoads != loadsBefore {
		t.Errorf("discarded target still loaded tiles (%d -> %d)", loadsBefore, m.Stats.TileLoads)
	}
	gl.DiscardFramebufferEXT(Enum(0x1234), nil)
	if e := gl.GetError(); e != INVALID_ENUM {
		t.Errorf("bad discard target: %s", ErrName(e))
	}
}

func TestReadPixelsSubregion(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	gl.ClearColor(0.0, 0.0, 0.0, 1.0)
	gl.Clear(COLOR_BUFFER_BIT)
	// Paint a known texel via CopyTexSubImage-style direct draw: use
	// scissor-free full clear then selective readback only.
	gl.ClearColor(1, 0, 0, 1)
	gl.Clear(COLOR_BUFFER_BIT)
	buf := make([]byte, 2*2*4)
	gl.ReadPixels(3, 3, 2, 2, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 255 {
		t.Errorf("subregion read = %v", buf[:4])
	}
	gl.ReadPixels(7, 7, 2, 2, RGBA, UNSIGNED_BYTE, buf)
	if e := gl.GetError(); e != INVALID_VALUE {
		t.Errorf("out-of-bounds read: %s", ErrName(e))
	}
	gl.ReadPixels(0, 0, 2, 2, RGBA, UNSIGNED_BYTE, buf[:3])
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("short buffer: %s", ErrName(e))
	}
}

func TestCopyTexFeedbackLoopRejected(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 8, 8, RGBA, UNSIGNED_BYTE, nil)
	fbo := gl.GenFramebuffer()
	gl.BindFramebuffer(FRAMEBUFFER, fbo)
	gl.FramebufferTexture2D(FRAMEBUFFER, COLOR_ATTACHMENT0, TEXTURE_2D, tex, 0)
	// Copying the FBO into its own attachment is a feedback loop.
	gl.CopyTexImage2D(TEXTURE_2D, 0, RGBA, 0, 0, 8, 8, 0)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("feedback copy: %s", ErrName(e))
	}
	gl.CopyTexSubImage2D(TEXTURE_2D, 0, 0, 0, 0, 0, 4, 4)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("feedback subcopy: %s", ErrName(e))
	}
}

func TestViewportSubrectangle(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	gl.ClearColor(0, 0, 0, 1)
	gl.Clear(COLOR_BUFFER_BIT)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0); }`)
	gl.Viewport(4, 4, 4, 4) // top-right quadrant
	drawQuad(t, gl, p)
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 0 {
		t.Error("pixel (0,0) painted outside viewport")
	}
	if buf[(5*8+5)*4] != 255 {
		t.Error("pixel (5,5) not painted inside viewport")
	}
	gl.Viewport(0, 0, -1, 4)
	if e := gl.GetError(); e != INVALID_VALUE {
		t.Errorf("negative viewport: %s", ErrName(e))
	}
}

func TestTexSubImageValidation(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	data := make([]byte, 4*4*4)
	// Sub-image before allocation is invalid.
	gl.TexSubImage2D(TEXTURE_2D, 0, 0, 0, 4, 4, RGBA, UNSIGNED_BYTE, data)
	if e := gl.GetError(); e != INVALID_OPERATION {
		t.Errorf("sub-image before TexImage: %s", ErrName(e))
	}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, 4, 4, RGBA, UNSIGNED_BYTE, data)
	// Region out of bounds.
	gl.TexSubImage2D(TEXTURE_2D, 0, 2, 2, 4, 4, RGBA, UNSIGNED_BYTE, data)
	if e := gl.GetError(); e != INVALID_VALUE {
		t.Errorf("oob sub-image: %s", ErrName(e))
	}
	// Partial update lands in the right texels.
	patch := make([]byte, 2*2*4)
	for i := range patch {
		patch[i] = 77
	}
	gl.TexSubImage2D(TEXTURE_2D, 0, 1, 1, 2, 2, RGBA, UNSIGNED_BYTE, patch)
	td := gl.TextureData(tex)
	if td[(1*4+1)*4] != 77 || td[0] != 0 {
		t.Error("sub-image region placement wrong")
	}
}

func TestAdditiveBlendingHistogram(t *testing.T) {
	// glBlendFunc(GL_ONE, GL_ONE) scatter-accumulate: the GPGPU histogram
	// idiom. Three points land in the same bin; the bin accumulates.
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	gl.ClearColor(0, 0, 0, 0)
	gl.Clear(COLOR_BUFFER_BIT)
	gl.Enable(BLEND)
	gl.BlendFunc(ONE, ONE)
	p := buildProgram(t, gl, `
attribute vec2 a_pos;
void main(){ gl_Position = vec4(a_pos, 0.0, 1.0); }`, `
precision mediump float;
void main(){ gl_FragColor = vec4(0.25, 0.0, 0.0, 0.0); }`)
	gl.UseProgram(p)
	loc := gl.GetAttribLocation(p, "a_pos")
	gl.EnableVertexAttribArray(loc)
	// Three points, all at pixel (1,1); one at pixel (2,2).
	pts := []float32{-0.25, -0.25, -0.25, -0.25, -0.25, -0.25, 0.25, 0.25}
	gl.VertexAttribPointerClient(loc, 2, pts, 0, 0)
	gl.DrawArrays(POINTS, 0, 4)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("blend draw: %s", ErrName(e))
	}
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	at := func(x, y int) byte { return buf[(y*4+x)*4] }
	// 3 × 0.25 = 0.75 -> 191; 1 × 0.25 -> 64.
	if got := at(1, 1); got < 189 || got > 193 {
		t.Errorf("bin (1,1) = %d, want ~191 (3 hits)", got)
	}
	if got := at(2, 2); got < 62 || got > 66 {
		t.Errorf("bin (2,2) = %d, want ~64 (1 hit)", got)
	}
	// Saturation: many more hits clamp at 255.
	gl.DrawArrays(POINTS, 0, 3)
	gl.DrawArrays(POINTS, 0, 3)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	if got := at(1, 1); got != 255 {
		t.Errorf("saturated bin = %d, want 255", got)
	}
	// Disable returns to replace semantics.
	gl.Disable(BLEND)
	gl.DrawArrays(POINTS, 0, 4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	if got := at(1, 1); got != 64 {
		t.Errorf("unblended write = %d, want 64", got)
	}
}

func TestAlphaBlending(t *testing.T) {
	env := newEnv(t, device.Generic(), 2, 2, false)
	gl := env.gl
	gl.ClearColor(1, 0, 0, 1) // red background
	gl.Clear(COLOR_BUFFER_BIT)
	gl.Enable(BLEND)
	gl.BlendFunc(SRC_ALPHA, ONE_MINUS_SRC_ALPHA)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(0.0, 1.0, 0.0, 0.5); }`) // half-transparent green
	drawQuad(t, gl, p)
	buf := make([]byte, 2*2*4)
	gl.ReadPixels(0, 0, 2, 2, RGBA, UNSIGNED_BYTE, buf)
	// 0.5*green + 0.5*red.
	if buf[0] < 126 || buf[0] > 130 || buf[1] < 126 || buf[1] > 130 {
		t.Errorf("composited pixel = %v, want ~(128,128,..)", buf[:4])
	}
	gl.Enable(Enum(0x9999))
	if e := gl.GetError(); e != INVALID_ENUM {
		t.Errorf("bad capability: %s", ErrName(e))
	}
	gl.BlendFunc(Enum(0x9999), ONE)
	if e := gl.GetError(); e != INVALID_ENUM {
		t.Errorf("bad blend factor: %s", ErrName(e))
	}
}

func TestPointRenderingScatter(t *testing.T) {
	// GL_POINTS as the GPGPU scatter primitive: write values at computed
	// locations with flat varyings and gl_PointCoord.
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	gl.ClearColor(0, 0, 0, 1)
	gl.Clear(COLOR_BUFFER_BIT)
	vs := `
attribute vec2 a_pos;
attribute float a_val;
varying float v_val;
void main(){
	gl_Position = vec4(a_pos, 0.0, 1.0);
	gl_PointSize = 2.0;
	v_val = a_val;
}`
	fs := `
precision mediump float;
varying float v_val;
void main(){ gl_FragColor = vec4(v_val, gl_PointCoord.x, 0.0, 1.0); }`
	p := buildProgram(t, gl, vs, fs)
	gl.UseProgram(p)
	// Two points: one at the centre of pixel block (2,2), one at (6,6).
	// NDC centre of pixel block (2,2)+(3,3) etc: x = (3/8)*2-1.
	pos := []float32{-0.25, -0.25, 0.75, 0.75}
	vals := []float32{0.5, 1.0}
	posLoc := gl.GetAttribLocation(p, "a_pos")
	valLoc := gl.GetAttribLocation(p, "a_val")
	gl.EnableVertexAttribArray(posLoc)
	gl.EnableVertexAttribArray(valLoc)
	gl.VertexAttribPointerClient(posLoc, 2, pos, 0, 0)
	gl.VertexAttribPointerClient(valLoc, 1, vals, 0, 0)
	gl.DrawArrays(POINTS, 0, 2)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("points draw: %s", ErrName(e))
	}
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	at := func(x, y int) byte { return buf[(y*8+x)*4] }
	// First point (value 0.5 -> 128) covers the 2x2 block at (2..3, 2..3).
	if at(2, 2) != 128 || at(3, 3) != 128 {
		t.Errorf("point 1 block = %d/%d, want 128", at(2, 2), at(3, 3))
	}
	// Second point (value 1.0) covers (6..7, 6..7).
	if at(6, 6) != 255 || at(7, 7) != 255 {
		t.Errorf("point 2 block = %d/%d, want 255", at(6, 6), at(7, 7))
	}
	// Background untouched.
	if at(0, 0) != 0 || at(5, 2) != 0 {
		t.Error("scatter wrote outside its points")
	}
	// gl_PointCoord sweeps 0..1 across each point: green channel differs
	// between the left and right columns of a block.
	g := func(x, y int) byte { return buf[(y*8+x)*4+1] }
	if !(g(2, 2) < g(3, 2)) {
		t.Errorf("gl_PointCoord.x not increasing: %d vs %d", g(2, 2), g(3, 2))
	}
}

func TestPointDefaultSizeOnePixel(t *testing.T) {
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	gl.Clear(COLOR_BUFFER_BIT)
	p := buildProgram(t, gl, `
attribute vec2 a_pos;
void main(){ gl_Position = vec4(a_pos, 0.0, 1.0); }`, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0); }`)
	gl.UseProgram(p)
	loc := gl.GetAttribLocation(p, "a_pos")
	gl.EnableVertexAttribArray(loc)
	// Centre of pixel (1,1): ndc = (1.5/4)*2-1 = -0.25.
	gl.VertexAttribPointerClient(loc, 2, []float32{-0.25, -0.25}, 0, 0)
	gl.DrawArrays(POINTS, 0, 1)
	buf := make([]byte, 4*4*4)
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	lit := 0
	for i := 0; i < 16; i++ {
		if buf[i*4] == 255 {
			lit++
			if i != 1*4+1 {
				t.Errorf("wrong pixel lit: %d", i)
			}
		}
	}
	if lit != 1 {
		t.Errorf("%d pixels lit, want exactly 1", lit)
	}
}

func TestInterleavedVertexAttributes(t *testing.T) {
	// One VBO holding interleaved {pos.xy, brightness} per vertex: stride
	// and offset addressing must fetch the right components.
	env := newEnv(t, device.Generic(), 4, 4, false)
	gl := env.gl
	vs := `
attribute vec2 a_pos;
attribute float a_bright;
varying float v_b;
void main(){ gl_Position = vec4(a_pos, 0.0, 1.0); v_b = a_bright; }`
	fs := `
precision mediump float;
varying float v_b;
void main(){ gl_FragColor = vec4(v_b); }`
	p := buildProgram(t, gl, vs, fs)
	gl.UseProgram(p)
	// Interleaved: x, y, brightness — 12-byte stride.
	data := []float32{
		-1, -1, 0.5,
		1, -1, 0.5,
		1, 1, 0.5,
		-1, -1, 0.5,
		1, 1, 0.5,
		-1, 1, 0.5,
	}
	vbo := gl.GenBuffer()
	gl.BindBuffer(ARRAY_BUFFER, vbo)
	gl.BufferData(ARRAY_BUFFER, Float32Bytes(data), STATIC_DRAW)
	posLoc := gl.GetAttribLocation(p, "a_pos")
	bLoc := gl.GetAttribLocation(p, "a_bright")
	gl.EnableVertexAttribArray(posLoc)
	gl.EnableVertexAttribArray(bLoc)
	gl.VertexAttribPointer(posLoc, 2, FLOAT, 12, 0)
	gl.VertexAttribPointer(bLoc, 1, FLOAT, 12, 8)
	gl.DrawArrays(TRIANGLES, 0, 6)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("draw: %s", ErrName(e))
	}
	buf := make([]byte, 4)
	gl.ReadPixels(2, 2, 1, 1, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 128 {
		t.Errorf("brightness = %d, want 128", buf[0])
	}
}

func TestSurfaceSwitchMidStream(t *testing.T) {
	// Rendering continues correctly after MakeCurrent moves the context
	// to another surface.
	prof := device.Generic()
	d := egl.GetDisplay(prof)
	d.Initialize()
	s1, _ := d.CreatePbufferSurface(4, 4)
	s2, _ := d.CreatePbufferSurface(8, 8)
	ec, _ := d.CreateContext()
	ec.MakeCurrent(s1)
	gl := NewContext(ec)
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }`)
	gl.Viewport(0, 0, 4, 4)
	drawQuad(t, gl, p)
	if err := ec.MakeCurrent(s2); err != nil {
		t.Fatal(err)
	}
	gl.Viewport(0, 0, 8, 8)
	p2 := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(0.0, 1.0, 0.0, 1.0); }`)
	drawQuad(t, gl, p2)
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 0 || buf[1] != 255 {
		t.Errorf("second surface pixel = %v", buf[:4])
	}
	// First surface retains its red frame.
	ec.MakeCurrent(s1)
	gl.Viewport(0, 0, 4, 4)
	buf = buf[:4*4*4]
	gl.ReadPixels(0, 0, 4, 4, RGBA, UNSIGNED_BYTE, buf)
	if buf[0] != 255 || buf[1] != 0 {
		t.Errorf("first surface pixel = %v", buf[:4])
	}
}

func TestSwapIntervalDrivesIterationTiming(t *testing.T) {
	// End-to-end: a draw+swap loop on the VideoCore profile takes one
	// vsync period per frame; with interval 0 it collapses to the work.
	run := func(interval int) timing.Time {
		env := newEnv(t, device.VideoCoreIV(), 16, 16, true)
		gl := env.gl
		env.ectx.SwapInterval(interval)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
void main(){ gl_FragColor = vec4(1.0); }`)
		gl.UseProgram(p)
		loc := gl.GetAttribLocation(p, "a_pos")
		quad := []float32{-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1}
		gl.EnableVertexAttribArray(loc)
		gl.VertexAttribPointerClient(loc, 2, quad, 0, 0)
		start := gl.Machine().Now()
		for i := 0; i < 10; i++ {
			gl.Clear(COLOR_BUFFER_BIT)
			gl.DrawArrays(TRIANGLES, 0, 6)
			env.ectx.SwapBuffers()
		}
		return (gl.Machine().Now() - start) / 10
	}
	gated := run(1)
	free := run(0)
	period := timing.FromSeconds(1.0 / 60)
	if gated < period*9/10 {
		t.Errorf("interval-1 frame %v, want >= %v", gated, period)
	}
	if free >= period/2 {
		t.Errorf("interval-0 frame %v, want well below %v", free, period)
	}
}
