package gles

import (
	"bytes"
	"strings"
	"testing"

	"gles2gpgpu/internal/device"
)

// runScenarioFull is runScenario with every execution knob explicit:
// worker count, execution backend, and the host optimisation passes.
func runScenarioFull(t *testing.T, workers int, jit, passes bool, w, h int, scenario func(gl *Context) uint32) drawOutcome {
	t.Helper()
	env := newEnv(t, device.Generic(), w, h, false)
	gl := env.gl
	gl.SetWorkers(workers)
	gl.SetJIT(jit)
	gl.SetPasses(passes)
	defer gl.Destroy()
	prog := scenario(gl)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("scenario error: %s", ErrName(e))
	}
	out := drawOutcome{pixels: make([]byte, w*h*4)}
	gl.ReadPixels(0, 0, w, h, RGBA, UNSIGNED_BYTE, out.pixels)
	var ok bool
	out.fragments, out.cycles, out.texFetches, ok = gl.DrawStatsFor(prog, w, h)
	if !ok {
		t.Fatal("no draw stats recorded")
	}
	return out
}

// expectPassesParity demands identical framebuffer bytes and identical
// virtual-time counters across the full execution matrix the acceptance
// criterion names: {interpreter, compiled} × {passes on, off} × {1, 4
// workers}. The reference is the plainest configuration: serial
// interpreter, passes off.
func expectPassesParity(t *testing.T, w, h int, scenario func(gl *Context) uint32) {
	t.Helper()
	ref := runScenarioFull(t, 1, false, false, w, h, scenario)
	for _, workers := range []int{1, 4} {
		for _, jit := range []bool{false, true} {
			for _, passes := range []bool{false, true} {
				if workers == 1 && !jit && !passes {
					continue
				}
				name := cfgName(workers, jit, passes)
				got := runScenarioFull(t, workers, jit, passes, w, h, scenario)
				if !bytes.Equal(ref.pixels, got.pixels) {
					for i := range ref.pixels {
						if ref.pixels[i] != got.pixels[i] {
							t.Fatalf("%s: framebuffers diverge at byte %d (pixel %d): ref %d, got %d",
								name, i, i/4, ref.pixels[i], got.pixels[i])
						}
					}
				}
				if ref.fragments != got.fragments {
					t.Errorf("%s: fragments: %d vs %d", name, ref.fragments, got.fragments)
				}
				if ref.cycles != got.cycles {
					t.Errorf("%s: cycles: %d vs %d", name, ref.cycles, got.cycles)
				}
				if ref.texFetches != got.texFetches {
					t.Errorf("%s: tex fetches: %d vs %d", name, ref.texFetches, got.texFetches)
				}
			}
		}
	}
}

func cfgName(workers int, jit, passes bool) string {
	var sb strings.Builder
	if jit {
		sb.WriteString("jit")
	} else {
		sb.WriteString("interp")
	}
	if passes {
		sb.WriteString("+passes")
	}
	if workers > 1 {
		sb.WriteString("-parallel")
	} else {
		sb.WriteString("-serial")
	}
	return sb.String()
}

// TestPassesParityOptimisableShader: a shader built to give the passes
// work — dead assignments, copies of uniforms, constant subexpressions —
// alongside texturing and an unrolled loop. Everything observable must be
// bit-identical with the passes on or off.
func TestPassesParityOptimisableShader(t *testing.T) {
	const n = 64
	expectPassesParity(t, n, n, func(gl *Context) uint32 {
		checkerTexture(gl, n, n)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
uniform float u_k;
void main() {
	float dead = v_tex.x * 3.0 + u_k;
	dead = dead * dead;
	float copy = u_k;
	float folded = (0.25 + 0.5) * 0.5;
	vec4 s = texture2D(u_tex, v_tex);
	float acc = 0.0;
	for (int i = 0; i < 4; i++) {
		acc += s.x * copy + folded;
	}
	gl_FragColor = vec4(fract(acc), s.yz, 1.0);
}`)
		gl.UseProgram(p)
		gl.Uniform1i(gl.GetUniformLocation(p, "u_tex"), 0)
		gl.Uniform1f(gl.GetUniformLocation(p, "u_k"), 0.37)
		drawQuad(t, gl, p)
		return p
	})
}

// TestPassesParityDiscard: dead code around a data-dependent discard — the
// kill path, cycle charges of killed fragments and the dead-store
// elimination must all agree across the matrix.
func TestPassesParityDiscard(t *testing.T) {
	const n = 64
	expectPassesParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	float unused = v_tex.y * 9.0;
	if (v_tex.x > 0.5) discard;
	gl_FragColor = vec4(v_tex, 0.5, 1.0);
}`)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		return p
	})
}

// TestPassesWiringAttachesOptimized proves CompileShader actually runs the
// pass pipeline: with passes enabled the cached program carries an
// optimised form that did something; with SetPasses(false) it does not.
func TestPassesWiringAttachesOptimized(t *testing.T) {
	src := `
precision mediump float;
varying vec2 v_tex;
void main() {
	float dead = v_tex.x * 2.0;
	dead = dead + 1.0;
	gl_FragColor = vec4(v_tex, 0.0, 1.0);
}`
	for _, passes := range []bool{true, false} {
		env := newEnv(t, device.Generic(), 4, 4, false)
		gl := env.gl
		gl.SetPasses(passes)
		s := gl.CreateShader(FRAGMENT_SHADER)
		gl.ShaderSource(s, src)
		gl.CompileShader(s)
		if gl.GetShaderiv(s, COMPILE_STATUS) != 1 {
			t.Fatalf("compile: %s", gl.GetShaderInfoLog(s))
		}
		o := gl.shaders[s].compiled.Optimized()
		if passes && o == nil {
			t.Errorf("passes on: no optimised form attached")
		}
		if passes && o != nil && o.DeadInsts == 0 {
			t.Errorf("passes on: optimised form eliminated nothing")
		}
		if !passes && o != nil {
			t.Errorf("passes off: optimised form attached anyway")
		}
		gl.Destroy()
	}
}

// TestStrictLinkLimits: the dependent-texture-read depth is invisible to
// the compile-time counters, so a five-deep fetch chain compiles on the
// VideoCore profile — but with strict link-time checking enabled the link
// fails with the dataflow diagnostic, as the paper's drivers do.
func TestStrictLinkLimits(t *testing.T) {
	src := `
precision mediump float;
uniform sampler2D u_tex;
varying vec2 v_tex;
void main() {
	vec2 c = v_tex;
	c = texture2D(u_tex, c).xy;
	c = texture2D(u_tex, c).xy;
	c = texture2D(u_tex, c).xy;
	c = texture2D(u_tex, c).xy;
	c = texture2D(u_tex, c).xy;
	gl_FragColor = vec4(c, 0.0, 1.0);
}`
	link := func(strict bool) (int, string, *Context) {
		env := newEnv(t, device.VideoCoreIV(), 4, 4, false)
		gl := env.gl
		gl.SetStrictLimits(strict)
		vs := gl.CreateShader(VERTEX_SHADER)
		gl.ShaderSource(vs, quadVS)
		gl.CompileShader(vs)
		fs := gl.CreateShader(FRAGMENT_SHADER)
		gl.ShaderSource(fs, src)
		gl.CompileShader(fs)
		if gl.GetShaderiv(fs, COMPILE_STATUS) != 1 {
			t.Fatalf("compile-time limits should not see dependent reads: %s", gl.GetShaderInfoLog(fs))
		}
		p := gl.CreateProgram()
		gl.AttachShader(p, vs)
		gl.AttachShader(p, fs)
		gl.LinkProgram(p)
		return gl.GetProgramiv(p, LINK_STATUS), gl.GetProgramInfoLog(p), gl
	}
	status, _, gl := link(false)
	gl.Destroy()
	if status != 1 {
		t.Fatalf("default link should accept the shader")
	}
	status, log, gl := link(true)
	gl.Destroy()
	if status != 0 {
		t.Fatalf("strict link should reject the five-deep fetch chain")
	}
	if !strings.Contains(log, "dependent texture reads") {
		t.Errorf("link log %q, want the dependent-texture-read diagnostic", log)
	}
}
