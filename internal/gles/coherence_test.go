package gles

import (
	"bytes"
	"testing"

	"gles2gpgpu/internal/device"
)

// Adversarial coherence tests: a 64×64 target under the default 32-texel
// tiles gives exactly four tiles, and a 5-point stencil kernel gives each
// tile a footprint of its own pixel rect grown by a one-texel ring. That
// makes the invalidation set of a single poked texel exactly predictable:
// an interior texel re-shades one tile, a texel on a tile edge also re-shades
// the neighbour whose halo overlaps it, and the centre corner re-shades all
// four. Every step is mirrored on a coherence-off context and the two
// framebuffers and per-draw stats must stay byte-identical throughout.

const cohStencilFS = `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
uniform float u_bias;
void main() {
	float px = 1.0 / 64.0;
	vec4 c = texture2D(u_tex, v_tex);
	vec4 l = texture2D(u_tex, v_tex + vec2(-px, 0.0));
	vec4 r = texture2D(u_tex, v_tex + vec2(px, 0.0));
	vec4 d = texture2D(u_tex, v_tex + vec2(0.0, -px));
	vec4 u = texture2D(u_tex, v_tex + vec2(0.0, px));
	gl_FragColor = (c + l + r + d + u) * 0.2 + vec4(u_bias);
}`

// cohTestCtx is one side of the mirrored pair.
type cohTestCtx struct {
	gl   *Context
	prog uint32
	tex  uint32
}

func newCohTestCtx(t *testing.T, n int, coherence bool) *cohTestCtx {
	t.Helper()
	env := newEnv(t, device.Generic(), n, n, false)
	gl := env.gl
	gl.SetCoherence(coherence)
	tex := checkerTexture(gl, n, n)
	// Clamp instead of the REPEAT default: wrapped edge fetches would pull
	// the far side of the texture into every border tile's footprint.
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_S, CLAMP_TO_EDGE)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_T, CLAMP_TO_EDGE)
	prog := buildProgram(t, gl, quadVS, cohStencilFS)
	gl.UseProgram(prog)
	gl.Uniform1i(gl.GetUniformLocation(prog, "u_tex"), 0)
	return &cohTestCtx{gl: gl, prog: prog, tex: tex}
}

func (c *cohTestCtx) poke(x, y int, data []byte) {
	c.gl.BindTexture(TEXTURE_2D, c.tex)
	c.gl.TexSubImage2D(TEXTURE_2D, 0, x, y, 1, 1, RGBA, UNSIGNED_BYTE, data)
}

func (c *cohTestCtx) bias(v float32) {
	c.gl.UseProgram(c.prog)
	c.gl.Uniform1f(c.gl.GetUniformLocation(c.prog, "u_bias"), v)
}

// draw renders the quad and returns the framebuffer, the per-draw stats and
// the elided/shaded counter deltas of this draw.
func (c *cohTestCtx) draw(t *testing.T, n int) (pixels []byte, out drawOutcome, elided, shaded int64) {
	t.Helper()
	e0, s0 := c.gl.CoherenceStats()
	drawQuad(t, c.gl, c.prog)
	if e := c.gl.GetError(); e != NO_ERROR {
		t.Fatalf("draw error: %s", ErrName(e))
	}
	pixels = make([]byte, n*n*4)
	c.gl.ReadPixels(0, 0, n, n, RGBA, UNSIGNED_BYTE, pixels)
	var ok bool
	out.fragments, out.cycles, out.texFetches, ok = c.gl.DrawStatsFor(c.prog, n, n)
	if !ok {
		t.Fatal("no draw stats recorded")
	}
	e1, s1 := c.gl.CoherenceStats()
	return pixels, out, e1 - e0, s1 - s0
}

// TestCoherenceSingleTexelInvalidation walks the adversarial poke sequence,
// asserting the exact elided/shaded split per draw and bit-identity with a
// coherence-off mirror at every step.
func TestCoherenceSingleTexelInvalidation(t *testing.T) {
	const n = 64 // 2×2 tiles of DefaultTileSize (32)
	coh := newCohTestCtx(t, n, true)
	defer coh.gl.Destroy()
	ref := newCohTestCtx(t, n, false)
	defer ref.gl.Destroy()

	steps := []struct {
		name           string
		mutate         func(c *cohTestCtx)
		elided, shaded int64
	}{
		// Cold cache: every tile shades.
		{"first draw", nil, 0, 4},
		// Nothing changed: every tile replays.
		{"repeat", nil, 4, 0},
		// Interior texel of tile (0,0): only that tile's footprint sees it.
		{"poke interior (16,16)", func(c *cohTestCtx) {
			c.poke(16, 16, []byte{1, 2, 3, 4})
		}, 3, 1},
		{"repeat after interior poke", nil, 4, 0},
		// Texel (31,16) is inside tile (0,0) and inside the one-texel halo
		// of tile (32,0): both re-shade.
		{"poke tile edge (31,16)", func(c *cohTestCtx) {
			c.poke(31, 16, []byte{5, 6, 7, 8})
		}, 2, 2},
		// Texel (32,32) sits in the halos of all four tiles.
		{"poke centre corner (32,32)", func(c *cohTestCtx) {
			c.poke(32, 32, []byte{9, 10, 11, 12})
		}, 0, 4},
		// A uniform change alters the draw signature: full re-shade, then
		// the refreshed cache replays again.
		{"uniform change", func(c *cohTestCtx) { c.bias(0.125) }, 0, 4},
		{"repeat after uniform change", nil, 4, 0},
	}
	for _, st := range steps {
		if st.mutate != nil {
			st.mutate(coh)
			st.mutate(ref)
		}
		pixels, stats, elided, shaded := coh.draw(t, n)
		wantPixels, wantStats, refElided, _ := ref.draw(t, n)
		if !bytes.Equal(pixels, wantPixels) {
			for i := range pixels {
				if pixels[i] != wantPixels[i] {
					t.Fatalf("%s: framebuffers diverge at byte %d (pixel %d): coherent %d, reference %d",
						st.name, i, i/4, pixels[i], wantPixels[i])
				}
			}
		}
		if stats.fragments != wantStats.fragments || stats.cycles != wantStats.cycles ||
			stats.texFetches != wantStats.texFetches {
			t.Errorf("%s: draw stats diverge: coherent frags=%d cycles=%d tex=%d, reference frags=%d cycles=%d tex=%d",
				st.name, stats.fragments, stats.cycles, stats.texFetches,
				wantStats.fragments, wantStats.cycles, wantStats.texFetches)
		}
		if elided != st.elided || shaded != st.shaded {
			t.Errorf("%s: got %d elided / %d shaded tiles, want %d / %d",
				st.name, elided, shaded, st.elided, st.shaded)
		}
		if refElided != 0 {
			t.Errorf("%s: reference context elided %d tiles with coherence off", st.name, refElided)
		}
	}
}

// TestCoherenceIneligibleDraws verifies the gate: blending on, or sampling
// the render target itself, must bypass the cache entirely (counters frozen)
// while still producing correct pixels.
func TestCoherenceIneligibleDraws(t *testing.T) {
	const n = 64
	coh := newCohTestCtx(t, n, true)
	defer coh.gl.Destroy()
	coh.gl.Enable(BLEND)
	for i := 0; i < 3; i++ {
		drawQuad(t, coh.gl, coh.prog)
	}
	if elided, shaded := coh.gl.CoherenceStats(); elided != 0 || shaded != 0 {
		t.Errorf("blended draws touched the coherence cache: %d elided, %d shaded", elided, shaded)
	}
	coh.gl.Disable(BLEND)

	off := newCohTestCtx(t, n, false)
	defer off.gl.Destroy()
	for i := 0; i < 3; i++ {
		drawQuad(t, off.gl, off.prog)
	}
	if elided, shaded := off.gl.CoherenceStats(); elided != 0 || shaded != 0 {
		t.Errorf("disabled cache still counted: %d elided, %d shaded", elided, shaded)
	}
}

// TestCoherencePingPongTextures models the stepping pattern the cache is
// for: two texture objects alternating as source. Once the state reaches a
// fixed point, draws elide even though the bound texture NAME changes every
// iteration — the key deliberately excludes texture identity.
func TestCoherencePingPongTextures(t *testing.T) {
	const n = 64
	env := newEnv(t, device.Generic(), n, n, false)
	gl := env.gl
	defer gl.Destroy()
	gl.SetCoherence(true)

	// Two identical-content textures standing in for a converged ping-pong
	// pair.
	data := make([]byte, n*n*4)
	for i := range data {
		data[i] = byte(i * 13)
	}
	mkTex := func() uint32 {
		tex := gl.GenTexture()
		gl.BindTexture(TEXTURE_2D, tex)
		gl.TexParameteri(TEXTURE_2D, TEXTURE_MIN_FILTER, NEAREST)
		gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, NEAREST)
		gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_S, CLAMP_TO_EDGE)
		gl.TexParameteri(TEXTURE_2D, TEXTURE_WRAP_T, CLAMP_TO_EDGE)
		gl.TexImage2D(TEXTURE_2D, 0, RGBA, n, n, RGBA, UNSIGNED_BYTE, data)
		return tex
	}
	texA, texB := mkTex(), mkTex()
	prog := buildProgram(t, gl, quadVS, cohStencilFS)
	gl.UseProgram(prog)
	gl.Uniform1i(gl.GetUniformLocation(prog, "u_tex"), 0)

	var first []byte
	for i := 0; i < 4; i++ {
		if i%2 == 0 {
			gl.BindTexture(TEXTURE_2D, texA)
		} else {
			gl.BindTexture(TEXTURE_2D, texB)
		}
		drawQuad(t, gl, prog)
		pixels := make([]byte, n*n*4)
		gl.ReadPixels(0, 0, n, n, RGBA, UNSIGNED_BYTE, pixels)
		if first == nil {
			first = pixels
		} else if !bytes.Equal(first, pixels) {
			t.Fatalf("iteration %d: pixels diverge from first draw", i)
		}
	}
	elided, shaded := gl.CoherenceStats()
	if shaded != 4 {
		t.Errorf("got %d shaded tiles, want 4 (first draw only)", shaded)
	}
	if elided != 12 {
		t.Errorf("got %d elided tiles across the alternating draws, want 12", elided)
	}
}

// TestCoherenceStaticFootprint proves the proof-gated static footprint
// path actually engages for the stencil kernel (NEAREST + CLAMP_TO_EDGE,
// affine coordinates): the static-slot counter must advance on the
// coherent context, elision must stay exact, and pixels must stay
// byte-identical to the coherence-off mirror. Without this assertion the
// static feed could silently fall back to dynamic tracking and every
// other coherence test would still pass vacuously.
func TestCoherenceStaticFootprint(t *testing.T) {
	const n = 64 // 2×2 tiles of DefaultTileSize (32)
	coh := newCohTestCtx(t, n, true)
	defer coh.gl.Destroy()
	ref := newCohTestCtx(t, n, false)
	defer ref.gl.Destroy()

	p0, _, _, _ := coh.draw(t, n)
	r0, _, _, _ := ref.draw(t, n)
	if !bytes.Equal(p0, r0) {
		t.Fatal("coherent and reference pixels differ on the first draw")
	}
	if d := coh.gl.CoherenceStaticSlots(); d != 1 {
		t.Fatalf("static slots after first draw = %d, want 1 (stencil slot must be proven)", d)
	}
	if ref.gl.CoherenceStaticSlots() != 0 {
		t.Fatal("coherence-off context must never take the static path")
	}

	// The statically-computed footprints drive the same elision decisions.
	if _, _, elided, shaded := coh.draw(t, n); elided != 4 || shaded != 0 {
		t.Fatalf("identical redraw: elided=%d shaded=%d, want 4/0", elided, shaded)
	}

	// A texel inside one tile's one-texel-ring footprint re-shades exactly
	// that tile — the static rectangle is tight, not padded.
	coh.poke(8, 8, []byte{9, 9, 9, 9})
	ref.poke(8, 8, []byte{9, 9, 9, 9})
	p1, _, elided, shaded := coh.draw(t, n)
	r1, _, _, _ := ref.draw(t, n)
	if !bytes.Equal(p1, r1) {
		t.Fatal("pixels diverged after the poke")
	}
	if elided != 3 || shaded != 1 {
		t.Fatalf("poke redraw: elided=%d shaded=%d, want 3/1", elided, shaded)
	}
}
