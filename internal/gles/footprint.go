package gles

// Static sampler footprints for the coherence cache.
//
// The coherence path (coherence.go) normally discovers each tile's sampled
// texel region by recording every fetch through a tracking sampler. When
// the shader IR analysis proves a slot's coordinates are affine chains
// over at most one input component (analysis.SolveFootprint), the region
// is computable up front instead: bound the referenced input over the
// tile (gl_FragCoord from the tile rectangle, varyings by corner
// evaluation via raster.VaryingRectBounds, which widens one float32 ulp
// per side to cover interpolation rounding) and push the bounds through
// the proven chain (analysis.SlotRect, which replicates the sampler's
// NEAREST + CLAMP_TO_EDGE index arithmetic; the chain steps are weakly
// monotone so the rectangle is exact — no pad). Slots proven this way
// shade through the plain specialised sampler — no per-fetch recording —
// and the proven rectangle is snapshotted under the same bytes.Equal
// elision contract.
// The static rectangle is a superset of the texels actually fetched, so
// the comparison only gets more conservative, never less: elision stays
// bit-identical by construction.
//
// Slots the analysis cannot prove (dependent fetches, non-affine
// coordinates, LINEAR/REPEAT sampling) keep the dynamic tracker; the two
// kinds mix freely within one draw. A tile whose static bounds fail to
// evaluate (non-affine 1/w, NaN varyings) is shaded but not cached — the
// same degradation as a tile whose footprint exceeds the input budget.

import (
	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

// footprintFor returns the memoised footprint analysis for fp. Called on
// the draw goroutine only (workers receive the solved result).
func (c *Context) footprintFor(fp *shader.Program) *analysis.Footprint {
	if f, ok := c.footCache[fp]; ok {
		return f
	}
	cfg := analysis.BuildCFG(fp)
	f := analysis.SolveFootprint(cfg, analysis.SolveDefUse(cfg), analysis.SolveSCCP(cfg))
	if c.footCache == nil {
		c.footCache = make(map[*shader.Program]*analysis.Footprint)
	}
	c.footCache[fp] = f
	return f
}

// cohStaticSlots decides, per sampler slot, whether this draw can use the
// proven static footprint instead of dynamic tracking: the slot must be
// proven, every referenced input must be boundable over a tile, and the
// bound texture must use the NEAREST + CLAMP_TO_EDGE configuration whose
// index arithmetic SlotRect replicates. Slots with no reachable fetches
// (or an incomplete texture, which samples constant opaque black) are
// static with an empty footprint.
func cohStaticSlots(f *analysis.Footprint, p *Program, samplers []*Texture) []bool {
	static := make([]bool, len(samplers))
	for si := range samplers {
		if si >= len(f.Slots) || !f.Slots[si].Provable {
			continue
		}
		sf := &f.Slots[si]
		t := samplers[si]
		if len(sf.Coords) == 0 || !texComplete(t) {
			static[si] = true // fetches nothing / constant opaque black
			continue
		}
		if t.magFilter == LINEAR || t.wrapS == REPEAT || t.wrapT == REPEAT {
			continue // SlotRect models only the fast path
		}
		ok := true
		for ci := range sf.Coords {
			pair := &sf.Coords[ci]
			for _, tc := range [2]*analysis.TexCoord{&pair.U, &pair.V} {
				if !tc.HasInput {
					continue
				}
				if tc.InReg == p.fragCoordReg && tc.InComp == 3 {
					ok = false // 1/w is not exposed to the static bound
				}
			}
		}
		static[si] = ok
	}
	return static
}

// cohStaticRects evaluates the proven footprints of every static slot for
// one tile. ok=false when any static slot's bounds cannot be established
// for this tile; the caller then skips caching the tile.
func cohStaticRects(f *analysis.Footprint, static []bool, p *Program, uniforms [][4]float32, setups []raster.Triangle, tile *tileBin, samplers []*Texture, rects []cohRect) bool {
	inBounds := func(reg, comp int) (float32, float32, bool) {
		if reg == p.fragCoordReg {
			switch comp {
			case 0:
				return float32(tile.x0) + 0.5, float32(tile.x1) + 0.5, true
			case 1:
				return float32(tile.y0) + 0.5, float32(tile.y1) + 0.5, true
			case 2:
				return 0.5, 0.5, true
			}
			return 0, 0, false
		}
		if reg >= 0 && reg < len(p.varyingMap) && p.varyingMap[reg] >= 0 {
			first := true
			var lo, hi float32
			for _, ti := range tile.tris {
				l, h, ok := setups[ti].VaryingRectBounds(reg, comp, tile.x0, tile.y0, tile.x1, tile.y1)
				if !ok {
					return 0, 0, false
				}
				if first || l < lo {
					lo = l
				}
				if first || h > hi {
					hi = h
				}
				first = false
			}
			if first {
				return 0, 0, false
			}
			return lo, hi, true
		}
		// Unmapped inputs (varyings the vertex shader does not write,
		// gl_PointCoord and gl_FrontFacing in the triangle path) are left
		// at zero by draw setup.
		return 0, 0, true
	}
	for si := range static {
		if !static[si] {
			continue
		}
		rects[si] = cohRect{x0: 1, y0: 1, x1: 0, y1: 0}
		if si >= len(f.Slots) || len(f.Slots[si].Coords) == 0 || !texComplete(samplers[si]) {
			continue // provably fetches no texels
		}
		t := samplers[si]
		r, ok := f.SlotRect(si, uniforms, inBounds, t.W, t.H)
		if !ok {
			return false
		}
		rects[si] = cohRect{x0: r.X0, y0: r.Y0, x1: r.X1, y1: r.Y1}
	}
	return true
}

// fsUniforms4 exposes the fragment uniform registers as the plain slice
// type the analysis evaluator takes. Built once per draw, not per tile.
func (p *Program) fsUniforms4() [][4]float32 {
	u := make([][4]float32, len(p.fsUniforms))
	for i := range p.fsUniforms {
		u[i] = [4]float32(p.fsUniforms[i])
	}
	return u
}
