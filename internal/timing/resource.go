package timing

// Resource models a serially-occupied hardware unit (a shader core cluster,
// a DMA engine, the CPU driver thread). Work is scheduled with busy-until
// semantics: a request that arrives while the resource is occupied starts
// when the resource frees up.
//
// Resource is not safe for concurrent use; the simulator is single-threaded
// by design so that virtual time is deterministic.
type Resource struct {
	name      string
	busyUntil Time
	busyTotal Time // accumulated occupied time, for utilisation reports
	jobs      int64
}

// NewResource returns an idle resource with the given display name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the display name given at construction.
func (r *Resource) Name() string { return r.name }

// Acquire schedules a task of the given duration that may not start before
// earliest. It returns the actual start and end times and advances the
// resource's busy-until horizon. A negative duration is treated as zero.
func (r *Resource) Acquire(earliest, duration Time) (start, end Time) {
	if duration < 0 {
		duration = 0
	}
	start = Max(earliest, r.busyUntil)
	end = start + duration
	r.busyUntil = end
	r.busyTotal += duration
	r.jobs++
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.busyUntil }

// BusyTotal reports the total time the resource has been occupied.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Jobs reports how many tasks have been scheduled on the resource.
func (r *Resource) Jobs() int64 { return r.jobs }

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	r.busyUntil = 0
	r.busyTotal = 0
	r.jobs = 0
}

// Clock tracks the virtual time of a sequential actor, typically the CPU
// thread issuing API calls. Unlike Resource it has no queueing semantics:
// the actor is always "at" a single instant.
type Clock struct {
	now Time
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d (ignored if negative) and returns the
// new instant.
func (c *Clock) Advance(d Time) Time {
	if d > 0 {
		c.now += d
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is in the future; the clock
// never moves backwards.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset returns the clock to time zero.
func (c *Clock) Reset() { c.now = 0 }

// VSync models a fixed-rate display refresh. Tick boundaries fall at
// integer multiples of the period (offset zero).
type VSync struct {
	period Time
}

// NewVSync returns a vsync source with the given refresh rate in Hz.
// A rate of zero or below yields a source whose NextTick is the identity,
// modelling a display that imposes no waiting.
func NewVSync(hz float64) *VSync {
	if hz <= 0 {
		return &VSync{period: 0}
	}
	return &VSync{period: FromSeconds(1 / hz)}
}

// Period returns the refresh period (zero when the source imposes no wait).
func (v *VSync) Period() Time { return v.period }

// NextTick returns the first tick boundary strictly after t. When the
// period is zero it returns t unchanged.
func (v *VSync) NextTick(t Time) Time {
	if v.period <= 0 {
		return t
	}
	n := t / v.period
	tick := n * v.period
	if tick <= t {
		tick += v.period
	}
	return tick
}
