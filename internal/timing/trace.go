package timing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Event is one recorded span of activity on a named resource.
type Event struct {
	Resource string
	Name     string
	Start    Time
	End      Time
}

// Trace records activity spans for post-mortem inspection and debugging of
// the pipeline model. Recording is disabled by default so that benchmark
// runs pay no allocation cost.
type Trace struct {
	enabled bool
	events  []Event
	limit   int
}

// NewTrace returns a disabled trace with the given event cap
// (<=0 means unlimited).
func NewTrace(limit int) *Trace { return &Trace{limit: limit} }

// Enable turns recording on or off.
func (t *Trace) Enable(on bool) { t.enabled = on }

// Enabled reports whether spans are currently recorded.
func (t *Trace) Enabled() bool { return t.enabled }

// Add records a span if tracing is enabled and the cap is not reached.
func (t *Trace) Add(resource, name string, start, end Time) {
	if !t.enabled {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, Event{Resource: resource, Name: name, Start: start, End: end})
}

// Events returns the recorded spans in insertion order.
func (t *Trace) Events() []Event { return t.events }

// Reset drops all recorded spans, keeping the enabled state.
func (t *Trace) Reset() { t.events = t.events[:0] }

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events with microsecond timestamps).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  string  `json:"tid"`
}

// WriteChromeTrace exports the spans in the Chrome trace-event JSON format
// (load the file in chrome://tracing or https://ui.perfetto.dev to inspect
// the simulated pipeline visually). Each resource becomes a track.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, len(t.events))
	for _, e := range t.events {
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Cat:  e.Resource,
			Ph:   "X",
			Ts:   e.Start.Microseconds(),
			Dur:  (e.End - e.Start).Microseconds(),
			Pid:  1,
			Tid:  e.Resource,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": evs})
}

// WriteText dumps the trace sorted by start time, one span per line, in a
// stable human-readable format.
func (t *Trace) WriteText(w io.Writer) error {
	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].Resource < evs[j].Resource
	})
	for _, e := range evs {
		if _, err := fmt.Fprintf(w, "%12s  %12s  %-10s %s\n", e.Start, e.End, e.Resource, e.Name); err != nil {
			return err
		}
	}
	return nil
}
