// Package timing provides the virtual-time substrate for the GPU simulator.
//
// All simulated durations are expressed as Time, an int64 count of
// picoseconds. Picosecond resolution lets the model represent single cycles
// of multi-GHz clocks without rounding error while still covering more than
// 100 days of simulated time before overflow, far beyond any experiment in
// this repository.
//
// The package deliberately avoids a full discrete-event simulator: the GPU
// pipeline model in internal/gpu schedules work on Resource timelines
// (busy-until semantics), which is sufficient for throughput/latency
// modelling of a tile-based deferred renderer and keeps the simulation cost
// independent of the amount of simulated time.
package timing

import (
	"fmt"
	"math"
)

// Time is a point in (or span of) virtual time, in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds converts t to floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts floating-point seconds to Time, saturating on
// overflow.
func FromSeconds(s float64) Time {
	ps := s * float64(Second)
	if ps >= math.MaxInt64 {
		return Time(math.MaxInt64)
	}
	if ps <= math.MinInt64 {
		return Time(math.MinInt64)
	}
	return Time(ps)
}

// String renders the time with an auto-selected unit, e.g. "1.50ms".
func (t Time) String() string {
	abs := t
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case abs >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	case abs >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Cycles converts a cycle count at the given clock frequency (Hz) to Time.
// Fractional picoseconds are rounded up so that work never takes zero time.
func Cycles(cycles int64, hz float64) Time {
	if cycles <= 0 || hz <= 0 {
		return 0
	}
	ps := float64(cycles) * float64(Second) / hz
	t := Time(math.Ceil(ps))
	if t < 1 {
		t = 1
	}
	return t
}
