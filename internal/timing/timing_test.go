package timing

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := Second.Seconds(); got != 1 {
		t.Errorf("Second.Seconds() = %v, want 1", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("500ms = %v s, want 0.5", got)
	}
	if got := FromSeconds(2.5); got != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v, want 2.5s", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3 {
		t.Errorf("3us = %v us", got)
	}
	if got := (7 * Millisecond).Milliseconds(); got != 7 {
		t.Errorf("7ms = %v ms", got)
	}
}

func TestFromSecondsSaturates(t *testing.T) {
	if got := FromSeconds(1e30); got != Time(math.MaxInt64) {
		t.Errorf("FromSeconds(1e30) = %v, want MaxInt64", got)
	}
	if got := FromSeconds(-1e30); got != Time(math.MinInt64) {
		t.Errorf("FromSeconds(-1e30) = %v, want MinInt64", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{1, "1ps"},
		{Nanosecond, "1ns"},
		{1500 * Nanosecond, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min broken")
	}
}

func TestCycles(t *testing.T) {
	// 1000 cycles at 1 GHz = 1 us.
	if got := Cycles(1000, 1e9); got != Microsecond {
		t.Errorf("Cycles(1000, 1GHz) = %v, want 1us", got)
	}
	// Sub-picosecond work rounds up to at least 1 ps.
	if got := Cycles(1, 1e13); got < 1 {
		t.Errorf("Cycles(1, 10THz) = %v, want >= 1", got)
	}
	if got := Cycles(0, 1e9); got != 0 {
		t.Errorf("Cycles(0, _) = %v, want 0", got)
	}
	if got := Cycles(100, 0); got != 0 {
		t.Errorf("Cycles(_, 0) = %v, want 0", got)
	}
}

func TestResourceAcquireSequencing(t *testing.T) {
	r := NewResource("gpu")
	s1, e1 := r.Acquire(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first acquire = [%d,%d], want [0,10]", s1, e1)
	}
	// Arrives while busy: queued behind the first task.
	s2, e2 := r.Acquire(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second acquire = [%d,%d], want [10,20]", s2, e2)
	}
	// Arrives after idle: starts immediately.
	s3, e3 := r.Acquire(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third acquire = [%d,%d], want [100,105]", s3, e3)
	}
	if r.BusyTotal() != 25 {
		t.Errorf("BusyTotal = %v, want 25", r.BusyTotal())
	}
	if r.Jobs() != 3 {
		t.Errorf("Jobs = %v, want 3", r.Jobs())
	}
	if r.Name() != "gpu" {
		t.Errorf("Name = %q", r.Name())
	}
	r.Reset()
	if r.FreeAt() != 0 || r.BusyTotal() != 0 || r.Jobs() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestResourceNegativeDuration(t *testing.T) {
	r := NewResource("x")
	s, e := r.Acquire(3, -5)
	if s != 3 || e != 3 {
		t.Errorf("negative duration => [%d,%d], want [3,3]", s, e)
	}
}

// Property: resource timelines are monotone — each task starts no earlier
// than requested and no earlier than the previous task's end.
func TestResourceMonotonicityProperty(t *testing.T) {
	f := func(durs []uint16, gaps []uint16) bool {
		r := NewResource("p")
		var prevEnd Time
		var earliest Time
		n := len(durs)
		if len(gaps) < n {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			earliest += Time(gaps[i])
			s, e := r.Acquire(earliest, Time(durs[i]))
			if s < earliest || s < prevEnd || e != s+Time(durs[i]) {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(10)
	c.Advance(-5) // ignored
	if c.Now() != 10 {
		t.Errorf("Now = %v, want 10", c.Now())
	}
	c.AdvanceTo(5) // never backwards
	if c.Now() != 10 {
		t.Errorf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(50)
	if c.Now() != 50 {
		t.Errorf("AdvanceTo(50) => %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("Reset did not zero clock")
	}
}

func TestVSync(t *testing.T) {
	v := NewVSync(60)
	p := v.Period()
	if p <= 0 {
		t.Fatal("60Hz vsync has non-positive period")
	}
	// Strictly-after semantics.
	if got := v.NextTick(0); got != p {
		t.Errorf("NextTick(0) = %v, want %v", got, p)
	}
	if got := v.NextTick(p); got != 2*p {
		t.Errorf("NextTick(period) = %v, want %v", got, 2*p)
	}
	if got := v.NextTick(p - 1); got != p {
		t.Errorf("NextTick(period-1) = %v, want %v", got, p)
	}
	// Zero-rate display imposes no wait.
	free := NewVSync(0)
	if got := free.NextTick(1234); got != 1234 {
		t.Errorf("zero-rate NextTick = %v, want 1234", got)
	}
}

func TestVSyncTickProperty(t *testing.T) {
	v := NewVSync(60)
	f := func(raw uint32) bool {
		at := Time(raw) * 37 // spread values out
		tick := v.NextTick(at)
		if tick <= at {
			return false
		}
		// Ticks are multiples of the period and within one period.
		return tick%v.Period() == 0 && tick-at <= v.Period()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTrace(0)
	tr.Enable(true)
	tr.Add("fp", "draw#1", 0, 2*Microsecond)
	tr.Add("copy", "copy 4MB", Microsecond, 5*Microsecond)
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string][]map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	evs := doc["traceEvents"]
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0]["name"] != "draw#1" || evs[0]["ph"] != "X" {
		t.Errorf("event 0 = %v", evs[0])
	}
	if evs[1]["dur"].(float64) != 4 { // 4 microseconds
		t.Errorf("dur = %v", evs[1]["dur"])
	}
	if evs[1]["tid"] != "copy" {
		t.Errorf("tid = %v", evs[1]["tid"])
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace(2)
	tr.Add("gpu", "ignored-while-disabled", 0, 1)
	if len(tr.Events()) != 0 {
		t.Fatal("disabled trace recorded an event")
	}
	tr.Enable(true)
	if !tr.Enabled() {
		t.Fatal("Enabled() = false after Enable(true)")
	}
	tr.Add("gpu", "b", 5, 9)
	tr.Add("dma", "a", 1, 3)
	tr.Add("gpu", "c", 10, 11) // over cap, dropped
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("events = %d, want 2 (cap)", got)
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Sorted by start: "a" (1) before "b" (5).
	if ia, ib := strings.Index(out, "a"), strings.Index(out, "b"); ia < 0 || ib < 0 || ia > ib {
		t.Errorf("WriteText order wrong:\n%s", out)
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}
