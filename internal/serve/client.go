package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Client talks to a gles2gpgpud daemon.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:7433".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RetryAfterError reports a 429 rejection with the server's pacing hint.
type RetryAfterError struct {
	RetryAfter time.Duration
	Body       string
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("serve: overloaded, retry after %v: %s", e.RetryAfter, e.Body)
}

// Do submits one job and returns its result. A 429 response surfaces as
// *RetryAfterError so callers can pace themselves.
func (c *Client) Do(ctx context.Context, p Params) (*Result, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var res Result
		if err := json.Unmarshal(data, &res); err != nil {
			return nil, err
		}
		return &res, nil
	case http.StatusTooManyRequests:
		after := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return nil, &RetryAfterError{RetryAfter: after, Body: string(bytes.TrimSpace(data))}
	default:
		return nil, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
}

// Metrics fetches the daemon's Prometheus exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("serve: metrics: %s", resp.Status)
	}
	return string(data), nil
}

// Stats fetches the daemon's per-device warmth counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: stats: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// LoadOpts shapes a load-generator run.
type LoadOpts struct {
	// Jobs is the total number of jobs to push (default 64).
	Jobs int
	// Concurrency is the in-flight request cap (default 8).
	Concurrency int
	// Devices cycles job placement (default vc4, sgx).
	Devices []string
	// N is the matrix dimension (default 64).
	N int
	// SgemmEvery makes every k-th job an sgemm instead of a sum
	// (default 4; 0 disables sgemm). Ignored when N is not a power of
	// two, since sgemm requires one.
	SgemmEvery int
	// Seed drives the per-job input seeds.
	Seed int64
}

func (o LoadOpts) withDefaults() LoadOpts {
	if o.Jobs <= 0 {
		o.Jobs = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if len(o.Devices) == 0 {
		o.Devices = []string{"vc4", "sgx"}
	}
	if o.N <= 0 {
		o.N = 64
	}
	if o.SgemmEvery == 0 {
		o.SgemmEvery = 4
	}
	if o.N&(o.N-1) != 0 {
		o.SgemmEvery = -1 // sgemm requires a power-of-two n
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LoadReport summarises a load run; the daemon CI smoke publishes it as
// JSON (schema gles2gpgpu.servebench/1).
type LoadReport struct {
	Schema      string  `json:"schema"`
	Jobs        int     `json:"jobs"`
	Completed   int     `json:"completed"`
	Rejected    int     `json:"rejected"` // 429s observed (retried until accepted)
	Failed      int     `json:"failed"`
	Concurrency int     `json:"concurrency"`
	HostMS      float64 `json:"total_host_ms"`
	ThroughputS float64 `json:"jobs_per_second"`
	// Latency percentiles over the per-job client round-trip, in ms.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	// VirtualMS sums the simulated device time all jobs consumed.
	VirtualMS float64 `json:"virtual_ms_total"`
}

// RunLoad drives the daemon with a mixed sum/sgemm job stream and collects
// a throughput/latency report. 429 responses are retried (after a short
// backoff scaled down from the server hint, so tests stay fast).
func (c *Client) RunLoad(ctx context.Context, o LoadOpts) (*LoadReport, error) {
	o = o.withDefaults()
	rep := &LoadReport{Schema: "gles2gpgpu.servebench/1", Jobs: o.Jobs, Concurrency: o.Concurrency}
	var (
		mu        sync.Mutex
		latencies []float64
		firstErr  error
	)
	sem := make(chan struct{}, o.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < o.Jobs; i++ {
		p := Params{
			Device: o.Devices[i%len(o.Devices)],
			Kernel: "sum",
			N:      o.N,
			Seed:   o.Seed + int64(i)*2,
		}
		if o.SgemmEvery > 0 && i%o.SgemmEvery == o.SgemmEvery-1 {
			p.Kernel = "sgemm"
			p.Block = 16
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(p Params) {
			defer wg.Done()
			defer func() { <-sem }()
			jobStart := time.Now()
			for {
				res, err := c.Do(ctx, p)
				var retry *RetryAfterError
				if err == nil {
					mu.Lock()
					rep.Completed++
					rep.VirtualMS += float64(res.VirtualTime.Seconds()) * 1e3
					latencies = append(latencies, float64(time.Since(jobStart).Microseconds())/1e3)
					mu.Unlock()
					return
				}
				if errors.As(err, &retry) {
					mu.Lock()
					rep.Rejected++
					mu.Unlock()
					// The server hint paces real clients in seconds; the
					// load generator only needs to get out of the way.
					backoff := retry.RetryAfter / 100
					if backoff < 5*time.Millisecond {
						backoff = 5 * time.Millisecond
					}
					select {
					case <-time.After(backoff + time.Duration(rand.Int63n(int64(backoff)))):
						continue
					case <-ctx.Done():
					}
				}
				mu.Lock()
				rep.Failed++
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
		}(p)
	}
	wg.Wait()
	rep.HostMS = float64(time.Since(start).Microseconds()) / 1e3
	if rep.HostMS > 0 {
		rep.ThroughputS = float64(rep.Completed) / (rep.HostMS / 1e3)
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	rep.P50MS, rep.P90MS, rep.P99MS = pct(0.50), pct(0.90), pct(0.99)
	if rep.Failed > 0 {
		return rep, fmt.Errorf("serve: load: %d/%d jobs failed, first error: %w", rep.Failed, o.Jobs, firstErr)
	}
	return rep, nil
}
