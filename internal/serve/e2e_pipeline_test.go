package serve_test

// End-to-end test of pipeline jobs through the gles2gpgpud service: a real
// HTTP daemon, a concurrent mix of vision-pipeline and single-kernel jobs,
// and a bit-identical comparison of every pipeline result against direct
// engine execution with fusion disabled. The service keeps plans warm, so
// repeated jobs of one pipeline key run the fused schedule — the fusion
// contract (bytes identical, only host time changes) is what makes the
// unfused direct run a valid oracle.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/pipeline"
	"gles2gpgpu/internal/serve"
)

// pipeStageCount is the per-graph stage count the Result.Stages breakdown
// must report.
var pipeStageCount = map[string]int{"sepconv": 4, "histeq": 2, "pyramid": 3}

func testGraph(t *testing.T, name string, n int) pipeline.Graph {
	t.Helper()
	o := kernels.DefaultOptions
	switch name {
	case "sepconv":
		return pipeline.SepConvGraph(n, n, o)
	case "histeq":
		return pipeline.HistEqGraph(n, n, 8, o)
	case "pyramid":
		g, err := pipeline.PyramidGraph(n, 3, o)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	t.Fatalf("testGraph: unknown pipeline %q", name)
	return pipeline.Graph{}
}

// directPipelineRun executes one pipeline job on a fresh engine with no
// service machinery and fusion disabled, returning the final declared
// output.
func directPipelineRun(t *testing.T, dev, name string, n int, seed int64) []float64 {
	t.Helper()
	prof, err := device.ByName(dev)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(core.Config{
		Device: prof,
		Width:  n, Height: n,
		Swap:   core.SwapNone,
		Target: core.TargetTexture,
		UseVBO: true,
		NoFuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, name, n)
	p, err := pipeline.Compile(e, g)
	if err != nil {
		t.Fatal(err)
	}
	params := serve.Params{Pipeline: name, N: n, Seed: seed}
	src := e.NewTensor(n, n, codec.Unit)
	if err := src.Upload(params.Source(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(map[string]*core.Tensor{pipeline.SrcInput: src}); err != nil {
		t.Fatal(err)
	}
	e.Finish()
	out, err := p.Output(g.Outputs[len(g.Outputs)-1]).Read()
	if err != nil {
		t.Fatal(err)
	}
	return out.Data
}

func TestDaemonPipelineEndToEnd(t *testing.T) {
	devices := []string{"vc4", "sgx"}
	s, err := serve.New(serve.Config{
		Devices:    devices,
		QueueDepth: 128,
		MaxBatch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()
	ctx, cancel := context.WithCancel(bg)
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve.ListenAndServe(ctx, "127.0.0.1:0", s, 30*time.Second, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	client := &serve.Client{Base: "http://" + addr}

	// A concurrent mix: every device sees repeated sepconv jobs (so its
	// warm plan reruns and, with fusion on, fuses), plus histeq, pyramid
	// and plain sum kernel jobs interleaved. Three distinct pipeline keys
	// and one kernel key per device stay within the warm-runner cache.
	const jobs = 32
	type jobSpec struct {
		dev, pipe, kernel string
		seed              int64
	}
	specs := make([]jobSpec, jobs)
	direct := map[jobSpec][]float64{}
	for i := range specs {
		sp := jobSpec{dev: devices[i%2], seed: int64(i%3) + 1}
		switch (i / 2) % 4 {
		case 0, 1:
			sp.pipe = "sepconv"
		case 2:
			if i%4 < 2 {
				sp.pipe = "histeq"
			} else {
				sp.pipe = "pyramid"
			}
		case 3:
			sp.kernel = "sum"
		}
		specs[i] = sp
		if _, ok := direct[sp]; ok {
			continue
		}
		if sp.kernel != "" {
			direct[sp] = directRun(t, sp.dev, sp.kernel, sp.seed)
		} else {
			direct[sp] = directPipelineRun(t, sp.dev, sp.pipe, e2eN, sp.seed)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp jobSpec) {
			defer wg.Done()
			p := serve.Params{Device: sp.dev, Kernel: sp.kernel, Pipeline: sp.pipe, N: e2eN, Seed: sp.seed}
			res, err := client.Do(bg, p)
			if err != nil {
				errs <- fmt.Errorf("job %d (%+v): %w", i, sp, err)
				return
			}
			want := direct[sp]
			if len(res.Out) != len(want) {
				errs <- fmt.Errorf("job %d (%+v): got %d values, want %d", i, sp, len(res.Out), len(want))
				return
			}
			for k := range want {
				if res.Out[k] != want[k] {
					errs <- fmt.Errorf("job %d (%+v): out[%d] = %v, direct = %v (must be bit-identical)",
						i, sp, k, res.Out[k], want[k])
					return
				}
			}
			if sp.pipe == "" {
				return
			}
			if res.Pipeline != sp.pipe || res.Kernel != "" {
				errs <- fmt.Errorf("job %d: placement echo %q/%q, want pipeline %q", i, res.Kernel, res.Pipeline, sp.pipe)
				return
			}
			if len(res.Stages) != pipeStageCount[sp.pipe] {
				errs <- fmt.Errorf("job %d (%s): %d stage stats, want %d", i, sp.pipe, len(res.Stages), pipeStageCount[sp.pipe])
				return
			}
			var sum int64
			for _, st := range res.Stages {
				if st.VirtualTime <= 0 {
					errs <- fmt.Errorf("job %d (%s): stage %q reports virtual time %v", i, sp.pipe, st.Name, st.VirtualTime)
					return
				}
				sum += int64(st.VirtualTime)
			}
			if int64(res.VirtualTime) < sum {
				errs <- fmt.Errorf("job %d (%s): job virtual time %v below stage sum %d", i, sp.pipe, res.VirtualTime, sum)
				return
			}
			if res.ReadbacksElided == 0 {
				errs <- fmt.Errorf("job %d (%s): no readbacks elided on a multi-stage pipeline", i, sp.pipe)
			}
		}(i, sp)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	text, err := client.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	fuseOn := pipeline.DefaultFuse()
	wantGauge := 0.0
	if fuseOn {
		wantGauge = 1.0
	}
	if v, ok := metricValue(text, "gles2gpgpud_engine_fusion_enabled", ""); !ok || v != wantGauge {
		t.Errorf("fusion gauge = %v (found=%v), want %v", v, ok, wantGauge)
	}
	for _, dev := range devices {
		label := fmt.Sprintf(`device=%q`, dev)
		if v, ok := metricValue(text, "gles2gpgpud_pipeline_stages_total", label); !ok || v <= 0 {
			t.Errorf("%s: pipeline stages = %v (found=%v), want > 0", dev, v, ok)
		}
		if v, ok := metricValue(text, "gles2gpgpud_pipeline_intermediate_readbacks_elided_total", label); !ok || v <= 0 {
			t.Errorf("%s: readbacks elided = %v (found=%v), want > 0", dev, v, ok)
		}
		// Each device ran sepconv repeatedly on one warm plan: the first
		// run primes the timing cache, later runs fuse its stretch→gamma
		// tail — unless fusion is disabled in this environment.
		v, ok := metricValue(text, "gles2gpgpud_pipeline_passes_fused_total", label)
		if fuseOn && (!ok || v <= 0) {
			t.Errorf("%s: passes fused = %v (found=%v), want > 0", dev, v, ok)
		}
		if !fuseOn && ok && v != 0 {
			t.Errorf("%s: passes fused = %v with fusion disabled", dev, v)
		}
	}
	if v, ok := metricValue(text, "gles2gpgpud_jobs_failed_total", ""); ok && v != 0 {
		t.Errorf("failed jobs = %v, want 0", v)
	}

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain")
	}
}
