// Package serve is the GPGPU compute service built on the paper's
// framework: a per-device scheduler that owns long-lived core Engines,
// batches compatible jobs so kernel and tensor setup amortises across
// requests, recycles texture allocations through the engines' residency
// pools (the Fig. 5 reuse optimisation applied across jobs), and pushes
// back under load with bounded queues. cmd/gles2gpgpud exposes it over
// HTTP/JSON; gpgpurun -serve/-load embed the same scheduler and client.
package serve

import (
	"fmt"
	"math/rand"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/timing"
)

// MaxJobSize is the largest matrix dimension the service admits — the
// paper's evaluation size. Larger grids are rejected at validation, before
// any engine work.
const MaxJobSize = 1024

// Params describes one compute job. Inputs are either carried inline (A/B,
// flat row-major) or generated deterministically from Seed, so a client can
// reproduce any job's inputs — and its exact result — offline. A job is
// either a single kernel (Kernel) or a whole vision pipeline (Pipeline),
// never both.
type Params struct {
	// Device is the target platform: "vc4", "sgx" or "generic"
	// (device.ByName vocabulary). Defaults to "vc4".
	Device string `json:"device,omitempty"`
	// Kernel is the workload: "sum", "sgemm" or "saxpy". Empty when
	// Pipeline is set.
	Kernel string `json:"kernel"`
	// Pipeline names a prebuilt vision pipeline graph to run instead of a
	// single kernel: "sepconv", "adaptive", "histeq", "sobel" or "pyramid"
	// (the internal/pipeline vision suite). The source image is A (or the
	// Seed-derived matrix); B is not used. The worker compiles the graph
	// once per (pipeline, n) key and keeps the plan warm, so repeated jobs
	// re-upload the source and rerun the planned — and, after the first
	// run primes the timing cache, fused — schedule.
	Pipeline string `json:"pipeline,omitempty"`
	// N is the matrix dimension (N×N inputs and output).
	N int `json:"n"`
	// Block is the sgemm block size; defaults to 16. Must divide N, and
	// sgemm additionally needs a power-of-two N (the kernel's addressing
	// arithmetic assumes it).
	Block int `json:"block,omitempty"`
	// Alpha is the saxpy scale factor, in [0,1] (the encoded domain).
	Alpha float64 `json:"alpha,omitempty"`
	// Seed generates the inputs when A/B are absent: A gets seed, B gets
	// seed+1, values uniform in [0, 0.999) like the benchmark harness.
	Seed int64 `json:"seed,omitempty"`
	// A and B are optional explicit inputs, flat row-major length N*N,
	// values in [0,1) (the unit encoding range).
	A []float64 `json:"a,omitempty"`
	B []float64 `json:"b,omitempty"`
}

// StageResult is one pipeline stage's share of a job's virtual time, in
// execution order.
type StageResult struct {
	Name        string      `json:"name"`
	VirtualTime timing.Time `json:"virtual_time_ps"`
}

// Result is one completed job.
type Result struct {
	// Out is the output matrix, flat row-major length N*N. Go's JSON
	// encoding round-trips float64 exactly, so equality against a local
	// core run is bit-exact even through the HTTP daemon. For pipeline
	// jobs it is the graph's final declared output, whose dimension N may
	// be smaller than the job's (the pyramid's last level).
	Out []float64 `json:"out"`
	N   int       `json:"n"`
	// Device, Kernel and Pipeline echo the placement.
	Device   string `json:"device"`
	Kernel   string `json:"kernel"`
	Pipeline string `json:"pipeline,omitempty"`
	// Stages breaks a pipeline job's virtual time down per stage; nil for
	// kernel jobs.
	Stages []StageResult `json:"stages,omitempty"`
	// PassesFused counts stage dispatches this run avoided through the
	// planner's proof-gated fusion (0 on kernel jobs, on unfused runs and
	// on a warm plan's first, stat-priming run). ReadbacksElided counts
	// internal graph edges whose intermediate stayed resident on-device
	// instead of round-tripping through host floats.
	PassesFused     int `json:"passes_fused,omitempty"`
	ReadbacksElided int `json:"readbacks_elided,omitempty"`
	// VirtualTime is the simulated device time the job consumed
	// (picoseconds, timing.Time); HostNanos is wall-clock execution time on
	// the worker, excluding queueing.
	VirtualTime timing.Time `json:"virtual_time_ps"`
	HostNanos   int64       `json:"host_nanos"`
	// BatchSize is the size of the coalesced batch this job ran in (1 when
	// it ran alone); BatchIndex is the job's position in it.
	BatchSize  int `json:"batch_size"`
	BatchIndex int `json:"batch_index"`
}

// kernelKey identifies the compiled-runner compatibility class: jobs with
// equal keys can share one warm runner (and therefore one batch). For
// pipeline jobs the class is the (graph, size) pair — one compiled plan.
type kernelKey struct {
	kernel   string
	pipeline string
	n        int
	block    int
	alpha    float64
}

func (k kernelKey) String() string {
	if k.pipeline != "" {
		return fmt.Sprintf("pipeline:%s/n=%d", k.pipeline, k.n)
	}
	if k.kernel == "sgemm" {
		return fmt.Sprintf("sgemm/n=%d/b=%d", k.n, k.block)
	}
	if k.kernel == "saxpy" {
		// Alpha is part of the compatibility class (it is baked into the
		// warm runner), so it must be part of the affinity key: two alphas
		// are two runners, and the ring should be free to place them on
		// different shards.
		return fmt.Sprintf("saxpy/n=%d/a=%g", k.n, k.alpha)
	}
	return fmt.Sprintf("%s/n=%d", k.kernel, k.n)
}

// Key validates the job (value copy — the caller's Params are not
// mutated) and returns its affinity key: the same string that names the
// warm-runner compatibility class inside the scheduler ("sum/n=64",
// "sgemm/n=256/b=16", "pipeline:sepconv/n=128", ...). The shard router
// consistent-hashes this key so every job of one class lands on the same
// replica, keeping that replica's compiled programs, warm runners and
// resident tensors hot for the class.
func (p Params) Key() (string, error) {
	k, err := p.normalize()
	if err != nil {
		return "", err
	}
	return k.String(), nil
}

// pipelineNames is the vision-pipeline vocabulary the service admits,
// matching the prebuilt graphs in internal/pipeline.
var pipelineNames = map[string]bool{
	"sepconv": true, "adaptive": true, "histeq": true, "sobel": true, "pyramid": true,
}

// normalize validates p, applies defaults and returns its batching key.
func (p *Params) normalize() (kernelKey, error) {
	if p.Device == "" {
		p.Device = "vc4"
	}
	if p.N <= 0 || p.N > MaxJobSize {
		return kernelKey{}, fmt.Errorf("serve: n=%d outside [1, %d]", p.N, MaxJobSize)
	}
	for _, in := range [][]float64{p.A, p.B} {
		if in == nil {
			continue
		}
		if len(in) != p.N*p.N {
			return kernelKey{}, fmt.Errorf("serve: inline input length %d, want %d", len(in), p.N*p.N)
		}
		for _, v := range in {
			if v < 0 || v >= 1 {
				return kernelKey{}, fmt.Errorf("serve: inline input value %g outside [0,1)", v)
			}
		}
	}
	if p.Pipeline != "" {
		if p.Kernel != "" {
			return kernelKey{}, fmt.Errorf("serve: job names both kernel %q and pipeline %q", p.Kernel, p.Pipeline)
		}
		if !pipelineNames[p.Pipeline] {
			return kernelKey{}, fmt.Errorf("serve: unknown pipeline %q (want sepconv, adaptive, histeq, sobel or pyramid)", p.Pipeline)
		}
		if p.B != nil {
			return kernelKey{}, fmt.Errorf("serve: pipeline jobs take one input (a or seed), got b")
		}
		if p.Pipeline == "pyramid" && (p.N < 8 || p.N&(p.N-1) != 0) {
			return kernelKey{}, fmt.Errorf("serve: pyramid needs a power-of-two n >= 8, got %d", p.N)
		}
		return kernelKey{pipeline: p.Pipeline, n: p.N}, nil
	}
	key := kernelKey{kernel: p.Kernel, n: p.N}
	switch p.Kernel {
	case "sum":
	case "sgemm":
		if p.Block == 0 {
			p.Block = 16
		}
		if p.N&(p.N-1) != 0 {
			return kernelKey{}, fmt.Errorf("serve: sgemm needs a power-of-two n, got %d", p.N)
		}
		if p.Block < 1 || p.N%p.Block != 0 {
			return kernelKey{}, fmt.Errorf("serve: sgemm block %d must divide n=%d", p.Block, p.N)
		}
		key.block = p.Block
	case "saxpy":
		if p.Alpha < 0 || p.Alpha > 1 {
			return kernelKey{}, fmt.Errorf("serve: saxpy alpha %g outside [0,1]", p.Alpha)
		}
		key.alpha = p.Alpha
	default:
		return kernelKey{}, fmt.Errorf("serve: unknown kernel %q (want sum, sgemm or saxpy)", p.Kernel)
	}
	return key, nil
}

// Inputs materialises the job's input matrices: the inline ones when
// present, otherwise deterministic Seed-derived values. Exported so tests
// and clients can reproduce a job's exact inputs.
func (p *Params) Inputs() (a, b *codec.Matrix) {
	a = inputMatrix(p.N, p.A, p.Seed)
	b = inputMatrix(p.N, p.B, p.Seed+1)
	return a, b
}

// Source materialises a pipeline job's source image: the inline A when
// present, otherwise the deterministic Seed-derived matrix (the same
// derivation a kernel job's first input uses).
func (p *Params) Source() *codec.Matrix {
	return inputMatrix(p.N, p.A, p.Seed)
}

func inputMatrix(n int, inline []float64, seed int64) *codec.Matrix {
	m := codec.NewMatrix(n, n)
	if inline != nil {
		copy(m.Data, inline)
		return m
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 0.999
	}
	return m
}
