package serve_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"gles2gpgpu/internal/serve"
)

// TestOpenLoopAgainstDaemon drives a real scheduler with a short open-
// loop burst and checks the report accounting: every arrival terminal,
// percentiles ordered, virtual time accumulated.
func TestOpenLoopAgainstDaemon(t *testing.T) {
	s, err := serve.New(serve.Config{Devices: []string{"vc4"}, QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Start()
	srv := httptest.NewServer(serve.Handler(s))
	defer srv.Close()
	client := &serve.Client{Base: srv.URL}

	rep, err := client.RunOpenLoop(context.Background(), serve.OpenLoopOpts{
		RatePerSec: 500,
		Jobs:       64,
		N:          16,
		Keys:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Shed+rep.Failed != rep.Jobs {
		t.Errorf("arrivals unaccounted: completed %d + shed %d + failed %d != %d",
			rep.Completed, rep.Shed, rep.Failed, rep.Jobs)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0 (shed is the only acceptable loss)", rep.Failed)
	}
	if rep.Completed == 0 {
		t.Fatal("no job completed")
	}
	if rep.GoodputS <= 0 || rep.DurationMS <= 0 {
		t.Errorf("goodput %g over %gms, want both > 0", rep.GoodputS, rep.DurationMS)
	}
	if rep.P50MS > rep.P99MS || rep.P99MS > rep.P999MS || rep.P999MS > rep.MaxMS {
		t.Errorf("percentiles out of order: p50=%g p99=%g p999=%g max=%g",
			rep.P50MS, rep.P99MS, rep.P999MS, rep.MaxMS)
	}
	if rep.VirtualMS <= 0 {
		t.Errorf("virtual time = %g, want > 0", rep.VirtualMS)
	}
	// The warmth counters must show the stream's key classes were
	// compiled once and then reused.
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := st.Devices["vc4"]
	if d.RunnerMisses == 0 || d.RunnerHits == 0 {
		t.Errorf("runner hits/misses = %d/%d, want both > 0 for a 4-key stream", d.RunnerHits, d.RunnerMisses)
	}
}
