package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/pipeline"
	"gles2gpgpu/internal/shader"
)

// Sentinel errors the admission path returns. The HTTP layer maps
// ErrOverloaded to 429 with Retry-After and ErrDraining/ErrStopped to 503.
var (
	ErrOverloaded = errors.New("serve: device queue full")
	ErrDraining   = errors.New("serve: draining, not accepting jobs")
	ErrStopped    = errors.New("serve: scheduler stopped")
)

// Config sizes the scheduler.
type Config struct {
	// Devices lists the device pools to run (device.ByName vocabulary).
	// Default: vc4 and sgx, the paper's two platforms.
	Devices []string
	// Workers is the worker-goroutine count per device pool (default 1).
	// Each worker owns its engines outright, so engine state is never
	// shared across goroutines; workers in one pool share the compiled
	// shaders through the pool's SharedProgramCache.
	Workers int
	// QueueDepth bounds each device queue (default 64). A full queue
	// rejects with ErrOverloaded — backpressure, not buffering.
	QueueDepth int
	// MaxBatch caps how many compatible jobs one batch coalesces
	// (default 8).
	MaxBatch int
	// TensorPoolBytes is the per-engine residency-pool budget
	// (default 32 MiB). Negative disables pooling.
	TensorPoolBytes int
	// MaxRunners caps the warm-runner cache per worker (default 4).
	// Evicted runners release their tensors into the engine pool, so a
	// rebuilt runner's allocations are pool hits.
	MaxRunners int
	// NoTiling shades worker engines' draws in horizontal bands instead
	// of the tile-binned fragment engine. Host time only — results and
	// virtual-time figures are bit-identical either way.
	NoTiling bool
	// TileSize overrides the tiled engine's tile edge length for worker
	// engines (0: gles.DefaultTileSize).
	TileSize int
	// NoLanes shades worker engines' fragments individually instead of
	// lane-batched SoA execution. Host time only — results and
	// virtual-time figures are bit-identical either way.
	NoLanes bool
	// LaneWidth overrides the lane-batched engine's SoA batch width for
	// worker engines (0: shader.DefaultLaneWidth).
	LaneWidth int
	// NoMaskedLanes makes worker engines shade branchy programs (jacobi)
	// per-fragment instead of divergence-masked lane execution. Host time
	// only — results and virtual-time figures are bit-identical either way.
	NoMaskedLanes bool
	// NoCoherence disables worker engines' cross-iteration tile-coherence
	// cache, re-shading every tile on every draw. Host time only — results
	// and virtual-time figures are bit-identical either way.
	NoCoherence bool
	// NoFuse disables proof-gated pass fusion in the pipeline planner for
	// worker engines: pipeline jobs run every stage as its own pass. Host
	// time only — results and virtual-time figures are bit-identical
	// either way (the fusion contract).
	NoFuse bool
}

func (c Config) withDefaults() Config {
	if len(c.Devices) == 0 {
		c.Devices = []string{"vc4", "sgx"}
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.TensorPoolBytes == 0 {
		c.TensorPoolBytes = 32 << 20
	}
	if c.MaxRunners <= 0 {
		c.MaxRunners = 4
	}
	return c
}

// Job is a submitted job handle.
type Job struct {
	params Params
	key    kernelKey
	ctx    context.Context
	done   chan struct{}
	res    *Result
	err    error
}

func (j *Job) finish(res *Result, err error) {
	j.res, j.err = res, err
	close(j.done)
}

// Wait blocks until the job completes, fails, or ctx expires. A job whose
// wait is abandoned still runs (or is discarded by the worker once its
// submit context is canceled).
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Scheduler runs per-device worker pools over bounded queues.
type Scheduler struct {
	cfg     Config
	metrics *Metrics
	pools   map[string]*devicePool
	order   []string

	mu       sync.Mutex
	started  bool
	draining bool
	stopped  bool
	wg       sync.WaitGroup
}

// New builds a scheduler (pools, engines' shared caches, metrics) without
// starting any worker. Jobs may be submitted before Start — they queue up
// and run when the workers launch, which tests use to force coalescing.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, metrics: newMetrics(), pools: map[string]*devicePool{}}
	tileSize := cfg.TileSize
	if tileSize <= 0 {
		tileSize = gles.DefaultTileSize
	}
	laneWidth := cfg.LaneWidth
	if laneWidth <= 0 {
		laneWidth = shader.DefaultLaneWidth
	}
	if laneWidth > shader.MaxLaneWidth {
		laneWidth = shader.MaxLaneWidth
	}
	lanesOn := !cfg.NoLanes && shader.DefaultLanes() && shader.DefaultJIT()
	s.metrics.setEngineConfig(!cfg.NoTiling && gles.DefaultTiling(), tileSize,
		lanesOn, laneWidth,
		lanesOn && !cfg.NoMaskedLanes && shader.DefaultMaskedLanes(),
		!cfg.NoCoherence && gles.DefaultCoherence(),
		!cfg.NoFuse && pipeline.DefaultFuse())
	for _, name := range cfg.Devices {
		if _, dup := s.pools[name]; dup {
			return nil, fmt.Errorf("serve: duplicate device %q", name)
		}
		prof, err := device.ByName(name)
		if err != nil {
			return nil, err
		}
		p := &devicePool{
			name:    name,
			profile: prof, // the pool's single shared instance
			progs:   gles.NewSharedProgramCache(),
			sched:   s,
		}
		p.cond = sync.NewCond(&p.mu)
		for i := 0; i < cfg.Workers; i++ {
			p.workers = append(p.workers, &worker{pool: p})
		}
		s.pools[name] = p
		s.order = append(s.order, name)
		s.metrics.registerDevice(name, p.depth, p.gauge)
	}
	return s, nil
}

// Start launches the worker goroutines.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for _, name := range s.order {
		p := s.pools[name]
		for _, w := range p.workers {
			s.wg.Add(1)
			go func(w *worker) {
				defer s.wg.Done()
				w.run()
			}(w)
		}
	}
}

// Metrics exposes the scheduler's counters.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// Devices lists the pool names in configuration order.
func (s *Scheduler) Devices() []string { return append([]string(nil), s.order...) }

// QueueDepth reports the live queue depth of one device pool.
func (s *Scheduler) QueueDepth(dev string) int {
	if p, ok := s.pools[dev]; ok {
		return p.depth()
	}
	return 0
}

// RetryAfter estimates when a rejected client should try again: the queue
// drain time at one job per 10ms, floored at one second. Deliberately
// coarse — its job is pacing, not prediction.
func (s *Scheduler) RetryAfter(dev string) time.Duration {
	d := time.Duration(s.QueueDepth(dev)) * 10 * time.Millisecond / time.Duration(s.cfg.Workers)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Submit validates and enqueues a job. ctx is the job's context: if it is
// canceled while the job waits in queue or between the passes of its
// kernel, the job is abandoned.
func (s *Scheduler) Submit(ctx context.Context, p Params) (*Job, error) {
	key, err := p.normalize()
	if err != nil {
		dev := p.Device
		if dev == "" {
			dev = "unknown"
		}
		s.metrics.reject(dev, "invalid")
		return nil, err
	}
	pool, ok := s.pools[p.Device]
	if !ok {
		s.metrics.reject(p.Device, "invalid")
		return nil, fmt.Errorf("serve: device %q not served (have %v)", p.Device, s.order)
	}
	j := &Job{params: p, key: key, ctx: ctx, done: make(chan struct{})}
	if err := pool.enqueue(j, s.cfg.QueueDepth); err != nil {
		reason := "queue_full"
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrStopped) {
			reason = "draining"
		}
		s.metrics.reject(p.Device, reason)
		return nil, err
	}
	s.metrics.submit(p.Device)
	return j, nil
}

// Do submits a job and waits for its result.
func (s *Scheduler) Do(ctx context.Context, p Params) (*Result, error) {
	j, err := s.Submit(ctx, p)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Drain stops admission and waits until every queued and in-flight job has
// completed and all workers have exited. Returns ctx.Err if ctx expires
// first (workers keep finishing in the background). After Drain the
// scheduler is terminal: Submit fails with ErrDraining.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, p := range s.pools {
			p.setDraining()
		}
	}
	started := s.started
	s.mu.Unlock()
	if !started {
		// No workers to flush the queues: fail queued jobs directly.
		for _, p := range s.pools {
			for _, j := range p.takeAll() {
				j.finish(nil, ErrDraining)
			}
		}
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stop aborts: admission closes, queued jobs fail with ErrStopped, and
// Stop returns once in-flight batches finish.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	s.stopped = true
	started := s.started
	pools := s.pools
	s.mu.Unlock()
	for _, p := range pools {
		for _, j := range p.setStopped() {
			j.finish(nil, ErrStopped)
		}
	}
	if started {
		s.wg.Wait()
	}
}

// devicePool is one device's queue plus its workers' shared compilation
// state. All engines in the pool are built from the same *device.Profile
// instance — the condition for sharing compiled programs (the shader JIT
// memoises per cost-model identity).
type devicePool struct {
	name    string
	profile *device.Profile
	progs   *gles.SharedProgramCache
	sched   *Scheduler
	workers []*worker

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	draining bool
	stopped  bool
}

func (p *devicePool) enqueue(j *Job, depth int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return ErrStopped
	}
	if p.draining {
		return ErrDraining
	}
	if len(p.queue) >= depth {
		return ErrOverloaded
	}
	p.queue = append(p.queue, j)
	p.cond.Signal()
	return nil
}

func (p *devicePool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

func (p *devicePool) setDraining() {
	p.mu.Lock()
	p.draining = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *devicePool) setStopped() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	q := p.queue
	p.queue = nil
	p.cond.Broadcast()
	return q
}

func (p *devicePool) takeAll() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.queue
	p.queue = nil
	return q
}

// nextBatch blocks for work, then coalesces the maximal run of jobs at the
// queue head that share the head's kernel key, up to max. Returns nil when
// the pool shuts down with an empty queue.
func (p *devicePool) nextBatch(max int) []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 {
		if p.stopped || p.draining {
			return nil
		}
		p.cond.Wait()
	}
	if p.stopped {
		return nil
	}
	head := p.queue[0]
	batch := []*Job{head}
	rest := p.queue[1:]
	for len(rest) > 0 && len(batch) < max && rest[0].key == head.key {
		batch = append(batch, rest[0])
		rest = rest[1:]
	}
	p.queue = append(p.queue[:0:0], rest...)
	return batch
}

// gauge snapshots the pool's reuse state for /metrics. It takes each
// worker's lock, so it briefly serialises with batch execution.
func (p *devicePool) gauge() PoolGauge {
	var g PoolGauge
	gh, gm := p.progs.Stats()
	g.ProgHits, g.ProgMisses = gh, gm
	for _, w := range p.workers {
		w.mu.Lock()
		for _, e := range w.engines {
			st := e.TensorPool().Stats()
			g.PoolHits += st.Hits
			g.PoolMisses += st.Misses
			g.PoolEvictions += st.Evictions
			g.PoolReleased += st.Released
			g.PoolLiveBytes += st.LiveBytes
			g.SubUploads += e.GL().Allocator().SubUpdates
			elided, shaded := e.CoherenceStats()
			g.TilesElided += elided
			g.TilesShaded += shaded
			g.LaneFallbackDraws += e.LaneFallbackDraws()
		}
		g.RunnersLive += len(w.runners)
		g.RunnerEvictions += int64(w.runnerEvictions)
		g.RunnerHits += w.runnerHits
		g.RunnerMisses += w.runnerMisses
		w.mu.Unlock()
	}
	return g
}

// worker owns engines (one per grid size) and a warm-runner cache. Its
// mutex covers everything it owns; it is held for the duration of each
// batch, so metric gauges never observe half-updated engine state.
type worker struct {
	pool *devicePool

	mu              sync.Mutex
	engines         map[int]*core.Engine
	runners         map[kernelKey]*warmRunner
	lru             []kernelKey
	runnerEvictions int
	// runnerHits counts batches served by an already-warm runner;
	// runnerMisses counts builds. The ratio is the service's warmth signal:
	// the shard router's affinity argument is precisely that hashing job
	// keys to replicas keeps this hit rate high where round-robin dilutes
	// every replica's LRU with every key.
	runnerHits   int64
	runnerMisses int64
}

// warmRunner is a built kernel runner or compiled pipeline plan kept
// across jobs: re-running it only re-uploads inputs (sub-image path) and
// dispatches. Exactly one of run (kernel jobs) or plan (pipeline jobs) is
// set.
type warmRunner struct {
	run core.Runner
	e   *core.Engine
	set func(a, b *codec.Matrix) error

	// Pipeline state: the compiled plan, its resident source tensor, and
	// the graph's final declared output. Keeping the plan warm is what
	// makes repeated jobs fuse — the first run primes the per-draw timing
	// cache, every later run of the key takes the fused schedule.
	plan    *pipeline.Plan
	src     *core.Tensor
	outName string
}

// release returns the runner's GPU state to the engine's residency pool.
func (wr *warmRunner) release() {
	if wr.plan != nil {
		wr.plan.Release()
		wr.src.Release()
		return
	}
	if rel, ok := wr.run.(core.Releaser); ok {
		rel.Release()
	}
}

// visionGraph builds the prebuilt n×n vision graph a pipeline job names
// (the Params vocabulary validated by normalize).
func visionGraph(name string, n int) (pipeline.Graph, error) {
	o := kernels.DefaultOptions
	switch name {
	case "sepconv":
		return pipeline.SepConvGraph(n, n, o), nil
	case "adaptive":
		return pipeline.AdaptiveThresholdGraph(n, n, 2, o), nil
	case "histeq":
		return pipeline.HistEqGraph(n, n, 8, o), nil
	case "sobel":
		return pipeline.SobelGraph(n, n, o), nil
	case "pyramid":
		return pipeline.PyramidGraph(n, 3, o)
	}
	return pipeline.Graph{}, fmt.Errorf("serve: unknown pipeline %q", name)
}

func (w *worker) run() {
	for {
		batch := w.pool.nextBatch(w.pool.sched.cfg.MaxBatch)
		if batch == nil {
			return
		}
		w.mu.Lock()
		w.runBatch(batch)
		w.mu.Unlock()
	}
}

// engineFor returns the worker's engine for an n×n grid, building it on
// first use with the pool's shared program cache and a residency pool.
func (w *worker) engineFor(n int) (*core.Engine, error) {
	if e, ok := w.engines[n]; ok {
		return e, nil
	}
	e, err := core.NewEngine(core.Config{
		Device: w.pool.profile,
		Width:  n, Height: n,
		Swap:            core.SwapNone,
		Target:          core.TargetTexture,
		UseVBO:          true,
		ProgramCache:    w.pool.progs,
		TensorPoolBytes: w.pool.sched.cfg.TensorPoolBytes,
		NoTiling:        w.pool.sched.cfg.NoTiling,
		TileSize:        w.pool.sched.cfg.TileSize,
		NoLanes:         w.pool.sched.cfg.NoLanes,
		LaneWidth:       w.pool.sched.cfg.LaneWidth,
		NoMaskedLanes:   w.pool.sched.cfg.NoMaskedLanes,
		NoCoherence:     w.pool.sched.cfg.NoCoherence,
		NoFuse:          w.pool.sched.cfg.NoFuse,
	})
	if err != nil {
		return nil, err
	}
	if w.engines == nil {
		w.engines = map[int]*core.Engine{}
	}
	w.engines[n] = e
	return e, nil
}

// runnerFor returns the warm runner for a job's kernel key, building one
// from the job's inputs on miss and applying LRU eviction.
func (w *worker) runnerFor(j *Job) (*warmRunner, error) {
	if wr, ok := w.runners[j.key]; ok {
		w.runnerHits++
		w.touch(j.key)
		return wr, nil
	}
	w.runnerMisses++
	e, err := w.engineFor(j.params.N)
	if err != nil {
		return nil, err
	}
	if j.params.Pipeline != "" {
		g, err := visionGraph(j.params.Pipeline, j.params.N)
		if err != nil {
			return nil, err
		}
		src := e.NewTensor(j.params.N, j.params.N, codec.Unit)
		plan, err := pipeline.Compile(e, g)
		if err != nil {
			src.Release()
			return nil, err
		}
		wr := &warmRunner{e: e, plan: plan, src: src, outName: g.Outputs[len(g.Outputs)-1]}
		w.install(j.key, wr)
		return wr, nil
	}
	a, b := j.params.Inputs()
	wr := &warmRunner{e: e}
	switch j.params.Kernel {
	case "sum":
		r, err := core.NewSum(e, a, b)
		if err != nil {
			return nil, err
		}
		wr.run, wr.set = r, r.SetInputs
	case "sgemm":
		r, err := core.NewSgemm(e, a, b, j.params.Block)
		if err != nil {
			return nil, err
		}
		wr.run, wr.set = r, r.SetInputs
	case "saxpy":
		alpha := float32(j.params.Alpha)
		r, err := core.NewSaxpy(e, alpha, a, b)
		if err != nil {
			return nil, err
		}
		wr.run = r
		wr.set = func(a, b *codec.Matrix) error { return r.SetInputs(alpha, a, b) }
	default:
		return nil, fmt.Errorf("serve: unknown kernel %q", j.params.Kernel)
	}
	w.install(j.key, wr)
	return wr, nil
}

// install caches a freshly built runner under its key, evicting LRU
// entries over the cap.
func (w *worker) install(k kernelKey, wr *warmRunner) {
	if w.runners == nil {
		w.runners = map[kernelKey]*warmRunner{}
	}
	w.runners[k] = wr
	w.lru = append(w.lru, k)
	for len(w.runners) > w.pool.sched.cfg.MaxRunners {
		w.evictOldest()
	}
}

func (w *worker) touch(k kernelKey) {
	for i, key := range w.lru {
		if key == k {
			w.lru = append(append(w.lru[:i:i], w.lru[i+1:]...), k)
			return
		}
	}
}

func (w *worker) evictOldest() {
	k := w.lru[0]
	w.lru = w.lru[1:]
	if wr, ok := w.runners[k]; ok {
		delete(w.runners, k)
		wr.release()
		w.runnerEvictions++
	}
}

// drop poisons a runner after a failed execution: its double-buffered
// state may be mid-flight, so the next job of this key rebuilds from
// scratch (the tensors still recycle through the pool).
func (w *worker) drop(k kernelKey) {
	wr, ok := w.runners[k]
	if !ok {
		return
	}
	delete(w.runners, k)
	for i, key := range w.lru {
		if key == k {
			w.lru = append(w.lru[:i:i], w.lru[i+1:]...)
			break
		}
	}
	wr.release()
}

// jobLabel is the workload label job metrics carry: the kernel name, or
// "pipeline:<graph>" for pipeline jobs.
func jobLabel(p *Params) string {
	if p.Pipeline != "" {
		return "pipeline:" + p.Pipeline
	}
	return p.Kernel
}

// runBatch executes the coalesced jobs sequentially on the warm runner.
// Caller holds w.mu.
func (w *worker) runBatch(batch []*Job) {
	m := w.pool.sched.metrics
	m.batch(w.pool.name, len(batch))
	wr, err := w.runnerFor(batch[0])
	if err != nil {
		for _, j := range batch {
			m.fail(w.pool.name, jobLabel(&j.params))
			j.finish(nil, err)
		}
		return
	}
	for i, j := range batch {
		label := jobLabel(&j.params)
		if err := j.ctx.Err(); err != nil {
			m.cancel(w.pool.name)
			j.finish(nil, err)
			continue
		}
		hostStart := time.Now()
		vStart := wr.e.Now()
		var res *Result
		var runErr error
		if wr.plan != nil {
			res, runErr = w.runPipelineJob(wr, j)
		} else {
			res, runErr = w.runKernelJob(wr, j)
		}
		if runErr != nil {
			if j.ctx.Err() != nil {
				m.cancel(w.pool.name)
			} else {
				m.fail(w.pool.name, label)
			}
			w.drop(j.key)
			j.finish(nil, runErr)
			continue
		}
		res.Device = w.pool.name
		res.VirtualTime = wr.e.Now() - vStart
		res.HostNanos = time.Since(hostStart).Nanoseconds()
		res.BatchSize = len(batch)
		res.BatchIndex = i
		m.complete(w.pool.name, label, res.VirtualTime, time.Duration(res.HostNanos))
		j.finish(res, nil)
	}
}

// runKernelJob rebinds the warm runner's inputs and executes one kernel
// job. Caller holds w.mu and fills the Result's placement/timing fields.
func (w *worker) runKernelJob(wr *warmRunner, j *Job) (*Result, error) {
	a, b := j.params.Inputs()
	if err := wr.set(a, b); err != nil {
		return nil, err
	}
	if err := wr.run.RunOnce(j.ctx); err != nil {
		return nil, err
	}
	wr.e.Finish()
	out, err := wr.run.Result()
	if err != nil {
		return nil, err
	}
	return &Result{Out: out.Data, N: j.params.N, Kernel: j.params.Kernel}, nil
}

// runPipelineJob re-uploads the job's source image into the warm plan's
// resident tensor, runs the whole graph, and reads back the final declared
// output. Per-stage virtual times and the plan's fusion/residency counters
// flow into both the Result and the device's pipeline metrics. Caller
// holds w.mu and fills the Result's placement/timing fields.
func (w *worker) runPipelineJob(wr *warmRunner, j *Job) (*Result, error) {
	if err := wr.src.Upload(j.params.Source(), true); err != nil {
		return nil, err
	}
	stats, err := wr.plan.Run(map[string]*core.Tensor{pipeline.SrcInput: wr.src})
	if err != nil {
		return nil, err
	}
	wr.e.Finish()
	out, err := wr.plan.Output(wr.outName).Read()
	if err != nil {
		return nil, err
	}
	stages := make([]StageResult, len(stats.Stages))
	for si, st := range stats.Stages {
		stages[si] = StageResult{Name: st.Name, VirtualTime: st.VirtualTime}
	}
	w.pool.sched.metrics.pipelineRun(w.pool.name, len(stats.Stages), stats.PassesFused, stats.ReadbacksElided)
	return &Result{
		Out:             out.Data,
		N:               out.Rows,
		Pipeline:        j.params.Pipeline,
		Stages:          stages,
		PassesFused:     stats.PassesFused,
		ReadbacksElided: stats.ReadbacksElided,
	}, nil
}
