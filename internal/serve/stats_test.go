package serve

// The /v1/stats JSON surface exists for the shard router's benchmark: it
// needs warm-runner and tensor-pool hit/miss counters it can delta across
// a load run to prove affinity routing keeps replicas warmer than
// round-robin. These tests pin the counters' semantics (first job of a
// key is a runner miss, repeats are hits) and the HTTP framing.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStatsRunnerHitMissCounters(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Start()

	ctx := context.Background()
	// Three jobs of one key: first builds the runner (miss), the other two
	// reuse it (hits). A second key adds one more miss.
	for i := 0; i < 3; i++ {
		if _, err := s.Do(ctx, Params{Device: "vc4", Kernel: "sum", N: 16, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Do(ctx, Params{Device: "vc4", Kernel: "saxpy", N: 16, Alpha: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	st := s.Metrics().Stats()
	ds, ok := st.Devices["vc4"]
	if !ok {
		t.Fatalf("stats missing device vc4: %+v", st)
	}
	if ds.RunnerMisses != 2 {
		t.Errorf("runner misses = %d, want 2 (one build per key)", ds.RunnerMisses)
	}
	if ds.RunnerHits < 2 {
		t.Errorf("runner hits = %d, want >= 2 (repeated sum jobs reuse the warm runner)", ds.RunnerHits)
	}
	if ds.JobsCompleted != 4 {
		t.Errorf("jobs completed = %d, want 4", ds.JobsCompleted)
	}
	if ds.JobsSubmitted != 4 {
		t.Errorf("jobs submitted = %d, want 4", ds.JobsSubmitted)
	}
	if ds.PoolHits+ds.PoolMisses == 0 {
		t.Error("tensor pool saw no traffic; the stats surface must expose pool counters")
	}

	// The same counters must round-trip the HTTP endpoint.
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	client := &Client{Base: srv.URL}
	got, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Devices["vc4"].RunnerMisses != ds.RunnerMisses || got.Devices["vc4"].RunnerHits < ds.RunnerHits {
		t.Errorf("HTTP stats %+v disagree with direct snapshot %+v", got.Devices["vc4"], ds)
	}

	// Prometheus mirrors the same pair, so dashboards and the JSON surface
	// can never drift apart silently.
	var buf strings.Builder
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`gles2gpgpud_runner_hits_total{device="vc4"}`,
		`gles2gpgpud_runner_misses_total{device="vc4"} 2`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}
}

func TestMetricsContentTypeAndStatsFraming(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Prometheus scrapers negotiate on the 0.0.4 text exposition version;
	// a bare text/plain makes strict scrapers fall back or refuse.
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want text/plain with version=0.0.4", ct)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/v1/stats Content-Type = %q, want application/json", ct)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/v1/stats is not valid Stats JSON: %v", err)
	}
	if _, ok := st.Devices["vc4"]; !ok {
		t.Errorf("/v1/stats missing configured device: %+v", st)
	}
}

func TestParamsKeyMatchesSchedulerClass(t *testing.T) {
	cases := []struct {
		p    Params
		want string
	}{
		{Params{Kernel: "sum", N: 64}, "sum/n=64"},
		{Params{Kernel: "sgemm", N: 256}, "sgemm/n=256/b=16"}, // default block applied
		{Params{Kernel: "saxpy", N: 64, Alpha: 0.25}, "saxpy/n=64/a=0.25"},
		{Params{Pipeline: "sepconv", N: 128}, "pipeline:sepconv/n=128"},
	}
	for _, c := range cases {
		got, err := c.p.Key()
		if err != nil {
			t.Errorf("Key(%+v): %v", c.p, err)
			continue
		}
		if got != c.want {
			t.Errorf("Key(%+v) = %q, want %q", c.p, got, c.want)
		}
		// Key must not mutate the caller's Params (defaults are applied to
		// a copy): a second call must agree.
		again, _ := c.p.Key()
		if again != got {
			t.Errorf("Key is not idempotent: %q then %q", got, again)
		}
	}
	if _, err := (Params{Kernel: "nope", N: 8}).Key(); err == nil {
		t.Error("Key accepted an unknown kernel")
	}
}
