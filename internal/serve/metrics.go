package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"gles2gpgpu/internal/timing"
)

// latencyBuckets are the histogram upper bounds in seconds, shared by the
// host-clock and virtual-clock job-latency histograms (virtual times on the
// simulated devices land in the same milliseconds-to-seconds decades as
// host times, so one bucket ladder serves both).
var latencyBuckets = []float64{
	1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10,
}

// histogram is a fixed-bucket Prometheus-style histogram.
type histogram struct {
	counts []int64 // one per bucket, cumulative only at render time
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.total++
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
}

// Metrics aggregates service counters. All methods are safe for concurrent
// use: workers record on their goroutines while /metrics renders.
type Metrics struct {
	mu sync.Mutex

	submitted map[string]int64         // by device
	rejected  map[[2]string]int64      // by device, reason
	completed map[[2]string]int64      // by device, kernel
	failed    map[[2]string]int64      // by device, kernel
	canceled  map[string]int64         // by device
	batches   map[string]int64         // by device
	coalesced map[string]int64         // by device: batches with >= 2 jobs
	batchJobs map[string]int64         // by device: jobs that ran in batches
	latency   map[[3]string]*histogram // by device, kernel, clock

	// Pipeline-job counters, by device: stage dispatches executed, stage
	// dispatches avoided through proof-gated fusion, and intermediate
	// results kept resident on-device instead of round-tripping through a
	// host readback.
	pipeStages      map[string]int64
	pipePassesFused map[string]int64
	pipeElided      map[string]int64

	// Probes are registered by New before any worker starts and never
	// mutated after, so they are read without the mutex. They take worker
	// and pool locks, which workers hold while updating the counters
	// above — rendering therefore evaluates all probes BEFORE taking mu
	// (see WritePrometheus) to keep the lock order acyclic.
	queue  map[string]func() int       // by device: live depth probe
	gauges map[string]func() PoolGauge // by device: residency/cache probes

	// Engine configuration, set once by New before any worker starts:
	// whether worker engines shade with the tile-binned fragment engine
	// and at what tile edge length, whether they use lane-batched SoA
	// shader execution and at what batch width, whether the
	// cross-iteration tile-coherence cache is enabled, and whether the
	// pipeline planner's proof-gated pass fusion is enabled.
	tiling      bool
	tileSize    int
	lanes       bool
	laneWidth   int
	maskedLanes bool
	coherence   bool
	fusion      bool
}

// PoolGauge is a point-in-time snapshot of one device pool's reuse state,
// provided by the scheduler.
type PoolGauge struct {
	PoolHits, PoolMisses, PoolEvictions, PoolReleased int64
	PoolLiveBytes                                     int
	ProgHits, ProgMisses                              int64
	RunnersLive                                       int
	RunnerEvictions                                   int64
	RunnerHits, RunnerMisses                          int64
	SubUploads                                        int64
	TilesElided, TilesShaded                          int64
	LaneFallbackDraws                                 int64
}

func newMetrics() *Metrics {
	return &Metrics{
		submitted: map[string]int64{},
		rejected:  map[[2]string]int64{},
		completed: map[[2]string]int64{},
		failed:    map[[2]string]int64{},
		canceled:  map[string]int64{},
		batches:   map[string]int64{},
		coalesced: map[string]int64{},
		batchJobs: map[string]int64{},
		latency:   map[[3]string]*histogram{},

		pipeStages:      map[string]int64{},
		pipePassesFused: map[string]int64{},
		pipeElided:      map[string]int64{},

		queue:  map[string]func() int{},
		gauges: map[string]func() PoolGauge{},
	}
}

func (m *Metrics) submit(dev string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted[dev]++
}

func (m *Metrics) reject(dev, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[[2]string{dev, reason}]++
}

func (m *Metrics) complete(dev, kernel string, virtual timing.Time, host time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completed[[2]string{dev, kernel}]++
	for _, obs := range []struct {
		clock string
		secs  float64
	}{
		{"virtual", virtual.Seconds()},
		{"host", host.Seconds()},
	} {
		k := [3]string{dev, kernel, obs.clock}
		h := m.latency[k]
		if h == nil {
			h = newHistogram()
			m.latency[k] = h
		}
		h.observe(obs.secs)
	}
}

func (m *Metrics) fail(dev, kernel string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed[[2]string{dev, kernel}]++
}

func (m *Metrics) cancel(dev string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.canceled[dev]++
}

func (m *Metrics) batch(dev string, size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches[dev]++
	m.batchJobs[dev] += int64(size)
	if size >= 2 {
		m.coalesced[dev]++
	}
}

// setEngineConfig records the worker engines' fragment-shading setup for
// the static config gauges. Must happen before Start.
func (m *Metrics) setEngineConfig(tiling bool, tileSize int, lanes bool, laneWidth int, maskedLanes, coherence, fusion bool) {
	m.tiling = tiling
	m.tileSize = tileSize
	m.lanes = lanes
	m.laneWidth = laneWidth
	m.maskedLanes = maskedLanes
	m.coherence = coherence
	m.fusion = fusion
}

// pipelineRun accumulates one pipeline job's per-stage and fusion counters.
func (m *Metrics) pipelineRun(dev string, stages, passesFused, elided int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pipeStages[dev] += int64(stages)
	m.pipePassesFused[dev] += int64(passesFused)
	m.pipeElided[dev] += int64(elided)
}

// registerDevice installs a pool's probes. Must happen before Start.
func (m *Metrics) registerDevice(dev string, depth func() int, gauge func() PoolGauge) {
	m.queue[dev] = depth
	m.gauges[dev] = gauge
}

// CoalescedBatches returns the number of multi-job batches on a device.
func (m *Metrics) CoalescedBatches(dev string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coalesced[dev]
}

// PoolHitRate returns a device's live tensor-pool hit rate (0 when the pool
// is disabled or has seen no traffic).
func (m *Metrics) PoolHitRate(dev string) float64 {
	probe, ok := m.gauges[dev]
	if !ok {
		return 0
	}
	g := probe()
	if g.PoolHits+g.PoolMisses == 0 {
		return 0
	}
	return float64(g.PoolHits) / float64(g.PoolHits+g.PoolMisses)
}

// DeviceStats is one device pool's warmth and traffic snapshot, the JSON
// twin of the Prometheus gauges. The shard router's load sweep reads the
// runner and tensor-pool hit/miss pairs before and after a run to prove
// affinity routing keeps replicas warmer than round-robin.
type DeviceStats struct {
	QueueDepth      int   `json:"queue_depth"`
	JobsSubmitted   int64 `json:"jobs_submitted"`
	JobsCompleted   int64 `json:"jobs_completed"`
	JobsFailed      int64 `json:"jobs_failed"`
	Batches         int64 `json:"batches"`
	RunnerHits      int64 `json:"runner_hits"`
	RunnerMisses    int64 `json:"runner_misses"`
	RunnersLive     int   `json:"runners_live"`
	RunnerEvictions int64 `json:"runner_evictions"`
	PoolHits        int64 `json:"pool_hits"`
	PoolMisses      int64 `json:"pool_misses"`
	PoolEvictions   int64 `json:"pool_evictions"`
	PoolLiveBytes   int   `json:"pool_live_bytes"`
	ProgHits        int64 `json:"prog_hits"`
	ProgMisses      int64 `json:"prog_misses"`
	TilesElided     int64 `json:"tiles_elided"`
	TilesShaded     int64 `json:"tiles_shaded"`
}

// Stats is the /v1/stats document: per-device warmth counters.
type Stats struct {
	Devices map[string]DeviceStats `json:"devices"`
}

// Stats snapshots every device pool's counters. Like WritePrometheus it
// evaluates the live probes (which take worker locks) before taking the
// metrics mutex, keeping the lock order acyclic.
func (m *Metrics) Stats() Stats {
	depths := map[string]int{}
	for _, dev := range sortedKeys(m.queue) {
		depths[dev] = m.queue[dev]()
	}
	gauges := map[string]PoolGauge{}
	for _, dev := range sortedKeys(m.gauges) {
		gauges[dev] = m.gauges[dev]()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Devices: map[string]DeviceStats{}}
	for dev, g := range gauges {
		ds := DeviceStats{
			QueueDepth:      depths[dev],
			JobsSubmitted:   m.submitted[dev],
			Batches:         m.batches[dev],
			RunnerHits:      g.RunnerHits,
			RunnerMisses:    g.RunnerMisses,
			RunnersLive:     g.RunnersLive,
			RunnerEvictions: g.RunnerEvictions,
			PoolHits:        g.PoolHits,
			PoolMisses:      g.PoolMisses,
			PoolEvictions:   g.PoolEvictions,
			PoolLiveBytes:   g.PoolLiveBytes,
			ProgHits:        g.ProgHits,
			ProgMisses:      g.ProgMisses,
			TilesElided:     g.TilesElided,
			TilesShaded:     g.TilesShaded,
		}
		for k, v := range m.completed {
			if k[0] == dev {
				ds.JobsCompleted += v
			}
		}
		for k, v := range m.failed {
			if k[0] == dev {
				ds.JobsFailed += v
			}
		}
		st.Devices[dev] = ds
	}
	return st
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	// Evaluate the live probes first: they acquire worker locks whose
	// holders in turn record into the counters below.
	depths := map[string]int{}
	for _, dev := range sortedKeys(m.queue) {
		depths[dev] = m.queue[dev]()
	}
	gauges := map[string]PoolGauge{}
	for _, dev := range sortedKeys(m.gauges) {
		gauges[dev] = m.gauges[dev]()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	appendf := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	appendf("# HELP gles2gpgpud_jobs_submitted_total Jobs accepted into a device queue.\n# TYPE gles2gpgpud_jobs_submitted_total counter\n")
	for _, dev := range sortedKeys(m.submitted) {
		appendf("gles2gpgpud_jobs_submitted_total{device=%q} %d\n", dev, m.submitted[dev])
	}
	appendf("# HELP gles2gpgpud_jobs_rejected_total Jobs refused at admission.\n# TYPE gles2gpgpud_jobs_rejected_total counter\n")
	for _, k := range sortedKeys2(m.rejected) {
		appendf("gles2gpgpud_jobs_rejected_total{device=%q,reason=%q} %d\n", k[0], k[1], m.rejected[k])
	}
	appendf("# HELP gles2gpgpud_jobs_completed_total Jobs finished successfully.\n# TYPE gles2gpgpud_jobs_completed_total counter\n")
	for _, k := range sortedKeys2(m.completed) {
		appendf("gles2gpgpud_jobs_completed_total{device=%q,kernel=%q} %d\n", k[0], k[1], m.completed[k])
	}
	appendf("# HELP gles2gpgpud_jobs_failed_total Jobs that errored during execution.\n# TYPE gles2gpgpud_jobs_failed_total counter\n")
	for _, k := range sortedKeys2(m.failed) {
		appendf("gles2gpgpud_jobs_failed_total{device=%q,kernel=%q} %d\n", k[0], k[1], m.failed[k])
	}
	appendf("# HELP gles2gpgpud_jobs_canceled_total Jobs abandoned by their context.\n# TYPE gles2gpgpud_jobs_canceled_total counter\n")
	for _, dev := range sortedKeys(m.canceled) {
		appendf("gles2gpgpud_jobs_canceled_total{device=%q} %d\n", dev, m.canceled[dev])
	}
	appendf("# HELP gles2gpgpud_queue_depth Jobs waiting in a device queue.\n# TYPE gles2gpgpud_queue_depth gauge\n")
	for _, dev := range sortedKeys(depths) {
		appendf("gles2gpgpud_queue_depth{device=%q} %d\n", dev, depths[dev])
	}
	appendf("# HELP gles2gpgpud_batches_total Batches executed.\n# TYPE gles2gpgpud_batches_total counter\n")
	for _, dev := range sortedKeys(m.batches) {
		appendf("gles2gpgpud_batches_total{device=%q} %d\n", dev, m.batches[dev])
	}
	appendf("# HELP gles2gpgpud_coalesced_batches_total Batches that coalesced two or more compatible jobs.\n# TYPE gles2gpgpud_coalesced_batches_total counter\n")
	for _, dev := range sortedKeys(m.coalesced) {
		appendf("gles2gpgpud_coalesced_batches_total{device=%q} %d\n", dev, m.coalesced[dev])
	}
	appendf("# HELP gles2gpgpud_batched_jobs_total Jobs executed through batches.\n# TYPE gles2gpgpud_batched_jobs_total counter\n")
	for _, dev := range sortedKeys(m.batchJobs) {
		appendf("gles2gpgpud_batched_jobs_total{device=%q} %d\n", dev, m.batchJobs[dev])
	}
	appendf("# HELP gles2gpgpud_engine_tiling_enabled Whether worker engines shade with the tile-binned fragment engine (host-time knob; results are bit-identical either way).\n# TYPE gles2gpgpud_engine_tiling_enabled gauge\n")
	tiling := 0
	if m.tiling {
		tiling = 1
	}
	appendf("gles2gpgpud_engine_tiling_enabled %d\n", tiling)
	appendf("# HELP gles2gpgpud_engine_tile_size Tile edge length of the tiled fragment engine in pixels.\n# TYPE gles2gpgpud_engine_tile_size gauge\n")
	appendf("gles2gpgpud_engine_tile_size %d\n", m.tileSize)
	appendf("# HELP gles2gpgpud_engine_lanes_enabled Whether worker engines use lane-batched SoA shader execution (host-time knob; results are bit-identical either way).\n# TYPE gles2gpgpud_engine_lanes_enabled gauge\n")
	lanes := 0
	if m.lanes {
		lanes = 1
	}
	appendf("gles2gpgpud_engine_lanes_enabled %d\n", lanes)
	appendf("# HELP gles2gpgpud_engine_lane_width SoA batch width of the lane-batched shader engine.\n# TYPE gles2gpgpud_engine_lane_width gauge\n")
	appendf("gles2gpgpud_engine_lane_width %d\n", m.laneWidth)
	appendf("# HELP gles2gpgpud_engine_masked_lanes_enabled Whether worker engines run branchy programs through divergence-masked lane execution (host-time knob; results are bit-identical either way).\n# TYPE gles2gpgpud_engine_masked_lanes_enabled gauge\n")
	maskedLanes := 0
	if m.maskedLanes {
		maskedLanes = 1
	}
	appendf("gles2gpgpud_engine_masked_lanes_enabled %d\n", maskedLanes)
	appendf("# HELP gles2gpgpud_engine_coherence_enabled Whether worker engines elide tiles with unchanged inputs across iterations (host-time knob; results are bit-identical either way).\n# TYPE gles2gpgpud_engine_coherence_enabled gauge\n")
	coherence := 0
	if m.coherence {
		coherence = 1
	}
	appendf("gles2gpgpud_engine_coherence_enabled %d\n", coherence)
	appendf("# HELP gles2gpgpud_engine_fusion_enabled Whether the pipeline planner fuses proof-eligible adjacent passes on worker engines (host-time knob; results are bit-identical either way).\n# TYPE gles2gpgpud_engine_fusion_enabled gauge\n")
	fusion := 0
	if m.fusion {
		fusion = 1
	}
	appendf("gles2gpgpud_engine_fusion_enabled %d\n", fusion)
	appendf("# HELP gles2gpgpud_pipeline_stages_total Pipeline stage dispatches executed.\n# TYPE gles2gpgpud_pipeline_stages_total counter\n")
	for _, dev := range sortedKeys(m.pipeStages) {
		appendf("gles2gpgpud_pipeline_stages_total{device=%q} %d\n", dev, m.pipeStages[dev])
	}
	appendf("# HELP gles2gpgpud_pipeline_passes_fused_total Pipeline stage dispatches avoided through proof-gated pass fusion.\n# TYPE gles2gpgpud_pipeline_passes_fused_total counter\n")
	for _, dev := range sortedKeys(m.pipePassesFused) {
		appendf("gles2gpgpud_pipeline_passes_fused_total{device=%q} %d\n", dev, m.pipePassesFused[dev])
	}
	appendf("# HELP gles2gpgpud_pipeline_intermediate_readbacks_elided_total Pipeline intermediates kept resident on-device instead of round-tripping through a host readback.\n# TYPE gles2gpgpud_pipeline_intermediate_readbacks_elided_total counter\n")
	for _, dev := range sortedKeys(m.pipeElided) {
		appendf("gles2gpgpud_pipeline_intermediate_readbacks_elided_total{device=%q} %d\n", dev, m.pipeElided[dev])
	}

	for _, dev := range sortedKeys(gauges) {
		g := gauges[dev]
		appendf("gles2gpgpud_tensor_pool_hits_total{device=%q} %d\n", dev, g.PoolHits)
		appendf("gles2gpgpud_tensor_pool_misses_total{device=%q} %d\n", dev, g.PoolMisses)
		appendf("gles2gpgpud_tensor_pool_evictions_total{device=%q} %d\n", dev, g.PoolEvictions)
		appendf("gles2gpgpud_tensor_pool_released_total{device=%q} %d\n", dev, g.PoolReleased)
		appendf("gles2gpgpud_tensor_pool_live_bytes{device=%q} %d\n", dev, g.PoolLiveBytes)
		hitRate := 0.0
		if g.PoolHits+g.PoolMisses > 0 {
			hitRate = float64(g.PoolHits) / float64(g.PoolHits+g.PoolMisses)
		}
		appendf("gles2gpgpud_tensor_pool_hit_rate{device=%q} %g\n", dev, hitRate)
		appendf("gles2gpgpud_program_cache_hits_total{device=%q} %d\n", dev, g.ProgHits)
		appendf("gles2gpgpud_program_cache_misses_total{device=%q} %d\n", dev, g.ProgMisses)
		appendf("gles2gpgpud_runners_live{device=%q} %d\n", dev, g.RunnersLive)
		appendf("gles2gpgpud_runner_evictions_total{device=%q} %d\n", dev, g.RunnerEvictions)
		appendf("gles2gpgpud_runner_hits_total{device=%q} %d\n", dev, g.RunnerHits)
		appendf("gles2gpgpud_runner_misses_total{device=%q} %d\n", dev, g.RunnerMisses)
		appendf("gles2gpgpud_subimage_uploads_total{device=%q} %d\n", dev, g.SubUploads)
		appendf("gles2gpgpud_tiles_elided_total{device=%q} %d\n", dev, g.TilesElided)
		appendf("gles2gpgpud_tiles_shaded_total{device=%q} %d\n", dev, g.TilesShaded)
		appendf("gles2gpgpud_lane_fallback_draws_total{device=%q} %d\n", dev, g.LaneFallbackDraws)
	}

	appendf("# HELP gles2gpgpud_job_latency_seconds Per-job execution latency; clock=virtual is simulated device time, clock=host is worker wall time.\n# TYPE gles2gpgpud_job_latency_seconds histogram\n")
	keys := make([][3]string, 0, len(m.latency))
	for k := range m.latency {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		for c := 0; c < 3; c++ {
			if keys[i][c] != keys[j][c] {
				return keys[i][c] < keys[j][c]
			}
		}
		return false
	})
	for _, k := range keys {
		h := m.latency[k]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			appendf("gles2gpgpud_job_latency_seconds_bucket{device=%q,kernel=%q,clock=%q,le=%q} %d\n",
				k[0], k[1], k[2], fmt.Sprintf("%g", ub), cum)
		}
		appendf("gles2gpgpud_job_latency_seconds_bucket{device=%q,kernel=%q,clock=%q,le=\"+Inf\"} %d\n",
			k[0], k[1], k[2], h.total)
		appendf("gles2gpgpud_job_latency_seconds_sum{device=%q,kernel=%q,clock=%q} %g\n", k[0], k[1], k[2], h.sum)
		appendf("gles2gpgpud_job_latency_seconds_count{device=%q,kernel=%q,clock=%q} %d\n", k[0], k[1], k[2], h.total)
	}

	_, err := w.Write(b)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeys2(m map[[2]string]int64) [][2]string {
	ks := make([][2]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i][0] != ks[j][0] {
			return ks[i][0] < ks[j][0]
		}
		return ks[i][1] < ks[j][1]
	})
	return ks
}
