package serve

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"gles2gpgpu/internal/ref"
)

func sumParams(seed int64) Params {
	return Params{Device: "vc4", Kernel: "sum", N: 16, Seed: seed}
}

// TestQueueFullRejection pins the backpressure contract: a full queue
// rejects with ErrOverloaded (the HTTP layer's 429) instead of buffering.
func TestQueueFullRejection(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j1, err := s.Submit(ctx, sumParams(1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(ctx, sumParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, sumParams(3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit: got %v, want ErrOverloaded", err)
	}
	if got := s.QueueDepth("vc4"); got != 2 {
		t.Errorf("queue depth = %d, want 2", got)
	}
	if s.RetryAfter("vc4") <= 0 {
		t.Error("RetryAfter must be positive")
	}

	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `gles2gpgpud_jobs_rejected_total{device="vc4",reason="queue_full"} 1`) {
		t.Errorf("metrics missing queue_full rejection:\n%s", buf.String())
	}

	// Stop on a never-started scheduler fails the queued jobs.
	s.Stop()
	if _, err := j1.Wait(ctx); !errors.Is(err, ErrStopped) {
		t.Errorf("j1 after Stop: got %v, want ErrStopped", err)
	}
	if _, err := j2.Wait(ctx); !errors.Is(err, ErrStopped) {
		t.Errorf("j2 after Stop: got %v, want ErrStopped", err)
	}
	if _, err := s.Submit(ctx, sumParams(4)); !errors.Is(err, ErrStopped) {
		t.Errorf("submit after Stop: got %v, want ErrStopped", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	ctx := context.Background()
	cases := []Params{
		{Device: "vc4", Kernel: "jacobi", N: 16}, // unserved kernel
		{Device: "vc4", Kernel: "sum", N: 0},     // bad size via explicit negative
		{Device: "vc4", Kernel: "sum", N: MaxJobSize * 2},
		{Device: "vc4", Kernel: "sgemm", N: 16, Block: 5},     // block must divide N
		{Device: "vc4", Kernel: "sum", N: 4, A: []float64{1}}, // inline length mismatch
		{Device: "nosuch", Kernel: "sum", N: 16},
	}
	cases[1].N = -1
	for _, p := range cases {
		if _, err := s.Submit(ctx, p); err == nil {
			t.Errorf("Submit(%+v) unexpectedly accepted", p)
		}
	}
}

// TestCoalescingAndResidency enqueues before Start so the batch content is
// deterministic: three same-key sum jobs coalesce into one batch, and with
// MaxRunners=1 the sgemm job evicts the warm sum runner, whose released
// tensors then serve the rebuilt sum runner from the residency pool.
func TestCoalescingAndResidency(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}, MaxBatch: 4, MaxRunners: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var sums []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(ctx, sumParams(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, j)
	}
	jg, err := s.Submit(ctx, Params{Device: "vc4", Kernel: "sgemm", N: 16, Block: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	jl, err := s.Submit(ctx, sumParams(5))
	if err != nil {
		t.Fatal(err)
	}

	s.Start()
	for i, j := range sums {
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("sum job %d: %v", i, err)
		}
		if res.BatchSize != 3 || res.BatchIndex != i {
			t.Errorf("sum job %d: batch %d/%d, want %d/3", i, res.BatchIndex, res.BatchSize, i)
		}
		// Every job's matrix must match the CPU reference for its seed.
		p := sumParams(int64(i + 1))
		a, b := p.Inputs()
		want := make([]float64, 16*16)
		ref.Sum(a.Data, b.Data, want)
		if d := ref.MaxAbsDiff(want, res.Out); d > 1e-3 {
			t.Errorf("sum job %d: max error %g", i, d)
		}
	}
	if _, err := jg.Wait(ctx); err != nil {
		t.Fatalf("sgemm job: %v", err)
	}
	if _, err := jl.Wait(ctx); err != nil {
		t.Fatalf("trailing sum job: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if got := s.Metrics().CoalescedBatches("vc4"); got < 1 {
		t.Errorf("coalesced batches = %d, want >= 1", got)
	}
	g := s.pools["vc4"].gauge()
	if g.RunnerEvictions < 2 {
		t.Errorf("runner evictions = %d, want >= 2 (sum->sgemm->sum with MaxRunners=1)", g.RunnerEvictions)
	}
	if g.PoolHits == 0 {
		t.Error("tensor pool hits = 0, want > 0 (rebuilt runner must recycle released tensors)")
	}
	if g.SubUploads == 0 {
		t.Error("sub-image uploads = 0, want > 0 (warm re-runs take the TexSubImage2D path)")
	}
	if _, err := s.Submit(ctx, sumParams(6)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: got %v, want ErrDraining", err)
	}
}

// TestCancelMidBatch cancels the middle job of a coalesced batch before the
// workers start: its neighbours must still complete and only it reports the
// cancellation.
func TestCancelMidBatch(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()
	cctx, cancel := context.WithCancel(bg)
	j1, err := s.Submit(bg, sumParams(1))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(cctx, sumParams(2))
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(bg, sumParams(3))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	s.Start()
	defer s.Stop()

	res1, err := j1.Wait(bg)
	if err != nil {
		t.Fatalf("j1: %v", err)
	}
	if res1.BatchSize != 3 {
		t.Errorf("j1 batch size = %d, want 3 (cancelled job still counted)", res1.BatchSize)
	}
	if _, err := j2.Wait(bg); !errors.Is(err, context.Canceled) {
		t.Errorf("j2: got %v, want context.Canceled", err)
	}
	if _, err := j3.Wait(bg); err != nil {
		t.Fatalf("j3: %v", err)
	}

	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `gles2gpgpud_jobs_canceled_total{device="vc4"} 1`) {
		t.Errorf("metrics missing cancellation:\n%s", buf.String())
	}
}

// TestDrainCompletesInFlight checks graceful shutdown: Drain must flush
// every already-queued job to completion, not abandon it.
func TestDrainCompletesInFlight(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4", "sgx"}, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var jobs []*Job
	for i := 0; i < 6; i++ {
		dev := []string{"vc4", "sgx"}[i%2]
		j, err := s.Submit(ctx, Params{Device: dev, Kernel: "sum", N: 16, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Start()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d after drain: %v", i, err)
		}
		if len(res.Out) != 16*16 {
			t.Fatalf("job %d: result has %d values, want %d", i, len(res.Out), 16*16)
		}
	}
	// Drain is idempotent and terminal.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if _, err := s.Submit(ctx, sumParams(9)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: got %v, want ErrDraining", err)
	}
}

// TestWaitHonoursContext: an abandoned Wait does not leak the job; the
// scheduler still runs it.
func TestWaitHonoursContext(t *testing.T) {
	s, err := New(Config{Devices: []string{"vc4"}})
	if err != nil {
		t.Fatal(err)
	}
	bg := context.Background()
	j, err := s.Submit(bg, sumParams(1))
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(bg)
	cancel()
	if _, err := j.Wait(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait with canceled ctx: got %v", err)
	}
	s.Start()
	if _, err := j.Wait(bg); err != nil {
		t.Fatalf("job still completes after abandoned wait: %v", err)
	}
	s.Stop()
}

// TestMetricsMaskedLanes pins the masked-lane observability surface: the
// engine-config gauge reflects the NoMaskedLanes knob, and the per-device
// lane-fallback counter is exported after jobs run (the served kernels
// are straight-line, so its value stays zero — the line itself must still
// be present for dashboards to find).
func TestMetricsMaskedLanes(t *testing.T) {
	for _, noMasked := range []bool{false, true} {
		s, err := New(Config{Devices: []string{"vc4"}, NoMaskedLanes: noMasked})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		ctx := context.Background()
		if _, err := s.Do(ctx, sumParams(1)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Metrics().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		s.Stop()
		want := "gles2gpgpud_engine_masked_lanes_enabled 1"
		if noMasked {
			want = "gles2gpgpud_engine_masked_lanes_enabled 0"
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("NoMaskedLanes=%v: metrics missing %q:\n%s", noMasked, want, buf.String())
		}
		if !strings.Contains(buf.String(), `gles2gpgpud_lane_fallback_draws_total{device="vc4"}`) {
			t.Errorf("metrics missing the per-device lane-fallback counter:\n%s", buf.String())
		}
	}
}
