package serve

// Open-loop load generation. The closed-loop generator in client.go
// caps in-flight requests, so when the service slows down the offered
// load politely slows with it — queueing collapse is invisible. The
// open-loop generator schedules arrivals on a Poisson process at a
// fixed rate regardless of how the service is doing, and measures each
// job's latency from its *scheduled arrival time*: time a late launch
// spends waiting for the generator itself counts against the service,
// exactly as a queue-blind client would experience it.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// OpenLoopOpts shapes an open-loop run.
type OpenLoopOpts struct {
	// RatePerSec is the Poisson arrival rate (default 50).
	RatePerSec float64
	// Jobs is the total number of arrivals (default 256).
	Jobs int
	// N is the matrix dimension (default 32).
	N int
	// Device receives every job (default vc4).
	Device string
	// Keys is the number of distinct kernel-key classes the stream
	// cycles through (default 8): saxpy jobs with Keys distinct alphas,
	// so each class needs its own warm runner and affinity routing has
	// something to keep hot.
	Keys int
	// Seed drives both the arrival process and the per-job input seeds;
	// the same seed reproduces the same schedule exactly.
	Seed int64
	// Timeout bounds one job's round trip (default 30s).
	Timeout time.Duration
}

func (o OpenLoopOpts) withDefaults() OpenLoopOpts {
	if o.RatePerSec <= 0 {
		o.RatePerSec = 50
	}
	if o.Jobs <= 0 {
		o.Jobs = 256
	}
	if o.N <= 0 {
		o.N = 32
	}
	if o.Device == "" {
		o.Device = "vc4"
	}
	if o.Keys <= 0 {
		o.Keys = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// OpenLoopReport summarises an open-loop run. Latency percentiles are
// measured from each job's scheduled arrival, so generator-side delay
// under overload is charged to the service (open-loop semantics).
type OpenLoopReport struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Jobs       int     `json:"jobs"`
	Completed  int     `json:"completed"`
	// Shed counts jobs that ended in a 429 (router admission or daemon
	// queue-full). Open-loop clients do not retry: a shed arrival is
	// lost goodput, which is the honest way to report overload.
	Shed   int `json:"shed"`
	Failed int `json:"failed"`
	// DurationMS spans the first scheduled arrival to the last
	// completion.
	DurationMS float64 `json:"duration_ms"`
	// GoodputS is completed jobs per second of wall clock.
	GoodputS float64 `json:"goodput_per_sec"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	P999MS   float64 `json:"p999_ms"`
	MaxMS    float64 `json:"max_ms"`
	// VirtualMS sums the simulated device time of completed jobs.
	VirtualMS float64 `json:"virtual_ms_total"`
}

// openLoopParams returns arrival i's job: one of Keys saxpy classes,
// with a per-arrival input seed. The class sequence is scattered
// pseudorandomly (deterministic in i and seed) rather than cycled —
// a cyclic sequence can phase-lock with a round-robin rotation and
// accidentally shard itself, which would flatter exactly the policy
// this generator exists to expose.
func openLoopParams(o OpenLoopOpts, i int) Params {
	h := uint64(i)*0x9e3779b97f4a7c15 + uint64(o.Seed)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	k := int(h % uint64(o.Keys))
	return Params{
		Device: o.Device,
		Kernel: "saxpy",
		N:      o.N,
		Alpha:  float64(k+1) / float64(o.Keys+1),
		Seed:   o.Seed + int64(i%7),
	}
}

// RunOpenLoop drives the endpoint (a daemon or a router — same
// protocol) with a Poisson job stream at the configured rate and
// reports goodput and tail latency.
func (c *Client) RunOpenLoop(ctx context.Context, o OpenLoopOpts) (*OpenLoopReport, error) {
	o = o.withDefaults()
	rep := &OpenLoopReport{RatePerSec: o.RatePerSec, Jobs: o.Jobs}

	// The whole schedule is drawn up front: exponential inter-arrival
	// gaps with mean 1/rate, cumulated into absolute offsets.
	rng := rand.New(rand.NewSource(o.Seed))
	arrivals := make([]time.Duration, o.Jobs)
	var at float64 // seconds
	for i := range arrivals {
		at += rng.ExpFloat64() / o.RatePerSec
		arrivals[i] = time.Duration(at * float64(time.Second))
	}

	var (
		mu        sync.Mutex
		latencies []float64
		firstErr  error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < o.Jobs; i++ {
		// Open loop: wait for the scheduled arrival, never for capacity.
		if d := time.Until(start.Add(arrivals[i])); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return rep, ctx.Err()
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jctx, cancel := context.WithTimeout(ctx, o.Timeout)
			defer cancel()
			res, err := c.Do(jctx, openLoopParams(o, i))
			lat := time.Since(start.Add(arrivals[i]))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				rep.Completed++
				rep.VirtualMS += res.VirtualTime.Seconds() * 1e3
				latencies = append(latencies, float64(lat.Microseconds())/1e3)
			case errors.As(err, new(*RetryAfterError)):
				rep.Shed++
			default:
				rep.Failed++
				if firstErr == nil {
					firstErr = err
				}
			}
		}(i)
	}
	wg.Wait()
	rep.DurationMS = float64(time.Since(start).Microseconds()) / 1e3
	if rep.DurationMS > 0 {
		rep.GoodputS = float64(rep.Completed) / (rep.DurationMS / 1e3)
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(latencies)))) - 1
		if i < 0 {
			i = 0
		}
		return latencies[i]
	}
	rep.P50MS, rep.P99MS, rep.P999MS = pct(0.50), pct(0.99), pct(0.999)
	if n := len(latencies); n > 0 {
		rep.MaxMS = latencies[n-1]
	}
	if firstErr != nil {
		return rep, firstErr
	}
	return rep, nil
}
