package serve_test

// End-to-end test of the gles2gpgpud service stack: a real HTTP daemon on
// an ephemeral port, 64 concurrent jobs across both device profiles, and a
// bit-identical comparison of every returned matrix against direct engine
// execution — the service layer (queueing, batching, warm runners,
// residency pools) must be invisible in the numbers.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/serve"
)

const e2eN = 32

// directRun executes one job's kernel on a fresh engine with no service
// machinery (no shared program cache, no tensor pool) and returns the
// result matrix.
func directRun(t *testing.T, dev, kernel string, seed int64) []float64 {
	t.Helper()
	prof, err := device.ByName(dev)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(core.Config{
		Device: prof,
		Width:  e2eN, Height: e2eN,
		Swap:   core.SwapNone,
		Target: core.TargetTexture,
		UseVBO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := serve.Params{Device: dev, Kernel: kernel, N: e2eN, Block: 16, Seed: seed}
	a, b := p.Inputs()
	var r core.Runner
	switch kernel {
	case "sum":
		r, err = core.NewSum(e, a, b)
	case "sgemm":
		r, err = core.NewSgemm(e, a, b, 16)
	default:
		t.Fatalf("directRun: kernel %q", kernel)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.Finish()
	out, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	return out.Data
}

// metricValue sums the values of all samples of one metric family in a
// Prometheus text exposition, optionally filtered by a label substring.
func metricValue(text, name, labelSub string) (float64, bool) {
	var sum float64
	found := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue // longer metric name sharing the prefix
		}
		if labelSub != "" && !strings.Contains(rest, labelSub) {
			continue
		}
		i := strings.LastIndexByte(rest, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(rest[i+1:], 64)
		if err != nil {
			continue
		}
		sum += v
		found = true
	}
	return sum, found
}

func TestDaemonEndToEnd(t *testing.T) {
	devices := []string{"vc4", "sgx"}
	s, err := serve.New(serve.Config{
		Devices:    devices,
		QueueDepth: 128,
		MaxBatch:   8,
		MaxRunners: 1, // force sum<->sgemm evictions so the tensor pool gets traffic
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-enqueue a deterministic warm-up per device before the workers
	// start: three same-key sums coalesce into one batch, and the
	// sgemm/sum alternation under MaxRunners=1 makes the rebuilt runner
	// recycle pooled tensors.
	bg := context.Background()
	var warmup []*serve.Job
	for _, dev := range devices {
		for i := 0; i < 3; i++ {
			j, err := s.Submit(bg, serve.Params{Device: dev, Kernel: "sum", N: e2eN, Seed: int64(i + 1)})
			if err != nil {
				t.Fatal(err)
			}
			warmup = append(warmup, j)
		}
		j, err := s.Submit(bg, serve.Params{Device: dev, Kernel: "sgemm", N: e2eN, Block: 16, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		warmup = append(warmup, j)
		j, err = s.Submit(bg, serve.Params{Device: dev, Kernel: "sum", N: e2eN, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		warmup = append(warmup, j)
	}

	ctx, cancel := context.WithCancel(bg)
	ready := make(chan string, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve.ListenAndServe(ctx, "127.0.0.1:0", s, 30*time.Second, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	client := &serve.Client{Base: "http://" + addr}

	for i, j := range warmup {
		if _, err := j.Wait(bg); err != nil {
			t.Fatalf("warmup job %d: %v", i, err)
		}
	}

	// 64 concurrent jobs over HTTP, mixed kernels, both devices. Seeds
	// repeat so the warm runners see rebinds, and every result is checked
	// bit-for-bit against direct execution.
	const jobs = 64
	type jobSpec struct {
		dev, kernel string
		seed        int64
	}
	specs := make([]jobSpec, jobs)
	direct := map[jobSpec][]float64{}
	for i := range specs {
		sp := jobSpec{dev: devices[i%2], kernel: "sum", seed: int64(i%4) + 1}
		if i%4 == 3 {
			sp.kernel = "sgemm"
		}
		specs[i] = sp
		if _, ok := direct[sp]; !ok {
			direct[sp] = directRun(t, sp.dev, sp.kernel, sp.seed)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp jobSpec) {
			defer wg.Done()
			p := serve.Params{Device: sp.dev, Kernel: sp.kernel, N: e2eN, Seed: sp.seed}
			if sp.kernel == "sgemm" {
				p.Block = 16
			}
			res, err := client.Do(bg, p)
			if err != nil {
				errs <- fmt.Errorf("job %d (%+v): %w", i, sp, err)
				return
			}
			want := direct[sp]
			if len(res.Out) != len(want) {
				errs <- fmt.Errorf("job %d: got %d values, want %d", i, len(res.Out), len(want))
				return
			}
			for k := range want {
				if res.Out[k] != want[k] {
					errs <- fmt.Errorf("job %d (%+v): out[%d] = %v, direct = %v (must be bit-identical)",
						i, sp, k, res.Out[k], want[k])
					return
				}
			}
		}(i, sp)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	text, err := client.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range devices {
		label := fmt.Sprintf(`device=%q`, dev)
		if v, ok := metricValue(text, "gles2gpgpud_tensor_pool_hit_rate", label); !ok || v <= 0 {
			t.Errorf("%s: tensor pool hit rate = %v (found=%v), want > 0", dev, v, ok)
		}
		if v, ok := metricValue(text, "gles2gpgpud_coalesced_batches_total", label); !ok || v < 1 {
			t.Errorf("%s: coalesced batches = %v (found=%v), want >= 1", dev, v, ok)
		}
		if v, ok := metricValue(text, "gles2gpgpud_jobs_completed_total", label); !ok || v < jobs/2 {
			t.Errorf("%s: completed jobs = %v (found=%v), want >= %d", dev, v, ok, jobs/2)
		}
	}
	if v, ok := metricValue(text, "gles2gpgpud_jobs_failed_total", ""); ok && v != 0 {
		t.Errorf("failed jobs = %v, want 0", v)
	}

	// Shutdown drains cleanly.
	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain")
	}
}
