package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler builds the daemon's HTTP API over a scheduler:
//
//	POST /v1/jobs     submit a job (Params JSON), respond with Result JSON
//	GET  /v1/devices  served devices with live queue depths
//	GET  /v1/stats    per-device warmth counters (Stats JSON)
//	GET  /metrics     Prometheus text exposition
//	GET  /healthz     liveness
func Handler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var p Params
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		res, err := s.Do(r.Context(), p)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, res)
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.RetryAfter(p.Device).Seconds())))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrDraining), errors.Is(err, ErrStopped):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; the status is never seen but close the
			// exchange cleanly.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/v1/devices", func(w http.ResponseWriter, r *http.Request) {
		type devInfo struct {
			Name       string `json:"name"`
			QueueDepth int    `json:"queue_depth"`
		}
		var out []devInfo
		for _, d := range s.Devices() {
			out = append(out, devInfo{Name: d, QueueDepth: s.QueueDepth(d)})
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics().Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Serve runs the HTTP API on l until ctx is canceled, then drains: new
// submissions get 503 while queued and in-flight jobs complete, and the
// HTTP server shuts down once the queues are empty (bounded by
// drainTimeout). The scheduler must not be started yet; Serve starts it.
func Serve(ctx context.Context, l net.Listener, s *Scheduler, drainTimeout time.Duration) error {
	s.Start()
	srv := &http.Server{Handler: Handler(s)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		s.Stop()
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := s.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	<-errc
	if drainErr != nil {
		return fmt.Errorf("serve: drain: %w", drainErr)
	}
	return nil
}

// ListenAndServe is Serve on a fresh TCP listener. ready, when non-nil,
// receives the bound address (useful with ":0") before requests are
// accepted.
func ListenAndServe(ctx context.Context, addr string, s *Scheduler, drainTimeout time.Duration, ready chan<- string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr().String()
	}
	return Serve(ctx, l, s, drainTimeout)
}
