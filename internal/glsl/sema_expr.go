package glsl

import (
	"math"
	"strings"
)

// checkExpr type-checks e, resolves names, folds constants, and returns the
// (possibly annotated) expression.
func (c *checker) checkExpr(e Expr) (Expr, error) {
	switch e := e.(type) {
	case *FloatLit:
		e.T = T(KFloat)
		e.C = &ConstValue{T: e.T, Vals: []float64{e.Value}}
		return e, nil
	case *IntLit:
		e.T = T(KInt)
		e.C = &ConstValue{T: e.T, Vals: []float64{float64(e.Value)}}
		return e, nil
	case *BoolLit:
		e.T = T(KBool)
		v := 0.0
		if e.Value {
			v = 1
		}
		e.C = &ConstValue{T: e.T, Vals: []float64{v}}
		return e, nil
	case *Ident:
		return c.checkIdent(e)
	case *Unary:
		return c.checkUnary(e)
	case *Binary:
		return c.checkBinary(e)
	case *Assign:
		return c.checkAssign(e)
	case *Ternary:
		return c.checkTernary(e)
	case *Call:
		return c.checkCall(e)
	case *Index:
		return c.checkIndex(e)
	case *FieldSelect:
		return c.checkFieldSelect(e)
	}
	return nil, errf(e.Pos(), "unsupported expression")
}

func (c *checker) checkIdent(e *Ident) (Expr, error) {
	if sym := c.lookup(e.Name); sym != nil {
		e.Sym = sym
		e.T = sym.Type
		if sym.Kind == SymConst && sym.Const != nil {
			e.C = sym.Const
		}
		return e, nil
	}
	if bv, ok := builtinVars[e.Name]; ok {
		if !bv.stages[c.opts.Stage] {
			return nil, errf(e.P, "%s is not available in %s shaders", e.Name, c.opts.Stage)
		}
		sym := c.builtinSym(e.Name, bv)
		e.Sym = sym
		e.T = sym.Type
		if e.Name == "gl_FragColor" {
			c.out.WritesFragColor = true // recorded on any reference
		}
		if e.Name == "gl_Position" {
			c.out.WritesPosition = true
		}
		return e, nil
	}
	if v, ok := builtinConsts[e.Name]; ok {
		e.T = T(KInt)
		e.C = &ConstValue{T: e.T, Vals: []float64{float64(v)}}
		return e, nil
	}
	return nil, errf(e.P, "undeclared identifier %q", e.Name)
}

// builtinSyms caches one Symbol per gl_* variable so all references share
// register assignment.
func (c *checker) builtinSym(name string, bv builtinVar) *Symbol {
	if c.scopes[0][name] == nil {
		c.scopes[0][name] = &Symbol{Name: name, Kind: SymBuiltinVar, Type: bv.typ}
	}
	return c.scopes[0][name]
}

func (c *checker) checkUnary(e *Unary) (Expr, error) {
	x, err := c.checkExpr(e.X)
	if err != nil {
		return nil, err
	}
	e.X = x
	t := x.Type()
	switch e.Op {
	case OpNeg:
		if t.IsSampler() || t.Kind == KBool || t.ComponentKind() == KBool || t.IsArray() {
			return nil, errf(e.P, "operator - not defined for %s", t)
		}
		e.T = t
		if cv := x.ConstVal(); cv != nil {
			vals := make([]float64, len(cv.Vals))
			for i, v := range cv.Vals {
				vals[i] = -v
			}
			e.C = &ConstValue{T: t, Vals: vals}
		}
		return e, nil
	case OpNot:
		if t != T(KBool) {
			return nil, errf(e.P, "operator ! requires bool, got %s", t)
		}
		e.T = t
		if cv := x.ConstVal(); cv != nil {
			v := 1.0
			if cv.Bool() {
				v = 0
			}
			e.C = &ConstValue{T: t, Vals: []float64{v}}
		}
		return e, nil
	case OpPreInc, OpPreDec, OpPostInc, OpPostDec:
		if ok, why := c.isLValue(x); !ok {
			return nil, errf(e.P, "%s", why)
		}
		if t.ComponentKind() == KBool || t.IsSampler() || t.IsArray() {
			return nil, errf(e.P, "operator ++/-- not defined for %s", t)
		}
		e.T = t
		return e, nil
	}
	return nil, errf(e.P, "unsupported unary operator")
}

// arithResult computes the result type for +,-,*,/ under GLSL ES 1.00 rules
// (no implicit conversions; scalar⊗vector promotes; * does linear-algebra
// products for matrices).
func arithResult(op BinaryOp, lt, rt Type) (Type, bool) {
	if lt.IsArray() || rt.IsArray() || lt.IsSampler() || rt.IsSampler() {
		return Type{}, false
	}
	lk, rk := lt.ComponentKind(), rt.ComponentKind()
	if lk == KBool || rk == KBool || lk != rk {
		return Type{}, false
	}
	// Matrix cases.
	if lt.IsMatrix() || rt.IsMatrix() {
		switch {
		case lt.IsMatrix() && rt.IsMatrix():
			if lt != rt {
				return Type{}, false
			}
			return lt, true // componentwise for + - /; linear product for *
		case lt.IsMatrix() && rt.IsScalar(), rt.IsMatrix() && lt.IsScalar():
			if lt.IsMatrix() {
				return lt, true
			}
			return rt, true
		case op == OpMul && lt.IsMatrix() && rt.IsVector():
			if lt.MatrixCols() == rt.Components() {
				return rt, true
			}
			return Type{}, false
		case op == OpMul && lt.IsVector() && rt.IsMatrix():
			if rt.MatrixCols() == lt.Components() {
				return lt, true
			}
			return Type{}, false
		default:
			return Type{}, false
		}
	}
	switch {
	case lt == rt:
		return lt, true
	case lt.IsScalar() && rt.IsVector():
		return rt, true
	case lt.IsVector() && rt.IsScalar():
		return lt, true
	}
	return Type{}, false
}

func (c *checker) checkBinary(e *Binary) (Expr, error) {
	l, err := c.checkExpr(e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.checkExpr(e.R)
	if err != nil {
		return nil, err
	}
	e.L, e.R = l, r
	lt, rt := l.Type(), r.Type()
	switch e.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		t, ok := arithResult(e.Op, lt, rt)
		if !ok {
			return nil, errf(e.P, "operator %s not defined for %s and %s (GLSL ES has no implicit conversions)", e.Op, lt, rt)
		}
		e.T = t
	case OpLT, OpGT, OpLE, OpGE:
		if !(lt.IsScalar() && lt == rt && lt.Kind != KBool) {
			return nil, errf(e.P, "operator %s requires two int or two float scalars, got %s and %s", e.Op, lt, rt)
		}
		e.T = T(KBool)
	case OpEQ, OpNE:
		if lt != rt || lt.IsSampler() {
			return nil, errf(e.P, "operator %s requires matching non-sampler types, got %s and %s", e.Op, lt, rt)
		}
		e.T = T(KBool)
	case OpLAnd, OpLOr, OpLXor:
		if lt != T(KBool) || rt != T(KBool) {
			return nil, errf(e.P, "operator %s requires bool operands, got %s and %s", e.Op, lt, rt)
		}
		e.T = T(KBool)
	default:
		return nil, errf(e.P, "unsupported binary operator")
	}
	e.C = foldBinary(e.Op, e.T, l.ConstVal(), r.ConstVal())
	return e, nil
}

// foldBinary folds constant operands; returns nil when not foldable.
func foldBinary(op BinaryOp, resT Type, lc, rc *ConstValue) *ConstValue {
	if lc == nil || rc == nil {
		return nil
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	// Matrix linear algebra is not folded (never needed for loop bounds).
	if lc.T.IsMatrix() || rc.T.IsMatrix() {
		return nil
	}
	n := resT.Components()
	get := func(cv *ConstValue, i int) float64 {
		if len(cv.Vals) == 1 {
			return cv.Vals[0]
		}
		if i < len(cv.Vals) {
			return cv.Vals[i]
		}
		return 0
	}
	isInt := resT.ComponentKind() == KInt
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv:
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := get(lc, i), get(rc, i)
			var v float64
			switch op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpDiv:
				if b == 0 {
					if isInt {
						return nil // int division by zero: not a constant
					}
					v = math.Inf(1)
					if a < 0 {
						v = math.Inf(-1)
					}
					if a == 0 {
						v = math.NaN()
					}
				} else if isInt {
					v = float64(int64(a) / int64(b))
				} else {
					v = a / b
				}
			}
			if isInt && op != OpDiv {
				v = float64(int64(v))
			}
			vals[i] = v
		}
		return &ConstValue{T: resT, Vals: vals}
	case OpLT:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Float() < rc.Float())}}
	case OpGT:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Float() > rc.Float())}}
	case OpLE:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Float() <= rc.Float())}}
	case OpGE:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Float() >= rc.Float())}}
	case OpEQ, OpNE:
		eq := len(lc.Vals) == len(rc.Vals)
		if eq {
			for i := range lc.Vals {
				if lc.Vals[i] != rc.Vals[i] {
					eq = false
					break
				}
			}
		}
		if op == OpNE {
			eq = !eq
		}
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(eq)}}
	case OpLAnd:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Bool() && rc.Bool())}}
	case OpLOr:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Bool() || rc.Bool())}}
	case OpLXor:
		return &ConstValue{T: T(KBool), Vals: []float64{b2f(lc.Bool() != rc.Bool())}}
	}
	return nil
}

func (c *checker) checkAssign(e *Assign) (Expr, error) {
	lhs, err := c.checkExpr(e.LHS)
	if err != nil {
		return nil, err
	}
	rhs, err := c.checkExpr(e.RHS)
	if err != nil {
		return nil, err
	}
	e.LHS, e.RHS = lhs, rhs
	if ok, why := c.isLValue(lhs); !ok {
		return nil, errf(e.P, "cannot assign: %s", why)
	}
	lt, rt := lhs.Type(), rhs.Type()
	if lt.IsArray() || rt.IsArray() {
		return nil, errf(e.P, "arrays cannot be assigned as a whole in GLSL ES 1.00")
	}
	if e.Op == AsgEq {
		if !typesEqual(lt, rt) {
			return nil, errf(e.P, "cannot assign %s to %s", rt, lt)
		}
	} else {
		var bop BinaryOp
		switch e.Op {
		case AsgAdd:
			bop = OpAdd
		case AsgSub:
			bop = OpSub
		case AsgMul:
			bop = OpMul
		case AsgDiv:
			bop = OpDiv
		}
		t, ok := arithResult(bop, lt, rt)
		if !ok || !typesEqual(t, lt) {
			return nil, errf(e.P, "operator %s not defined for %s and %s", e.Op, lt, rt)
		}
	}
	e.T = lt
	return e, nil
}

func (c *checker) checkTernary(e *Ternary) (Expr, error) {
	cond, err := c.checkExpr(e.Cond)
	if err != nil {
		return nil, err
	}
	thenE, err := c.checkExpr(e.Then)
	if err != nil {
		return nil, err
	}
	elseE, err := c.checkExpr(e.Else)
	if err != nil {
		return nil, err
	}
	e.Cond, e.Then, e.Else = cond, thenE, elseE
	if cond.Type() != T(KBool) {
		return nil, errf(e.P, "ternary condition must be bool, got %s", cond.Type())
	}
	if !typesEqual(thenE.Type(), elseE.Type()) {
		return nil, errf(e.P, "ternary branches have mismatched types %s and %s", thenE.Type(), elseE.Type())
	}
	e.T = thenE.Type()
	if cc := cond.ConstVal(); cc != nil {
		if cc.Bool() {
			e.C = thenE.ConstVal()
		} else {
			e.C = elseE.ConstVal()
		}
	}
	return e, nil
}

func (c *checker) checkIndex(e *Index) (Expr, error) {
	x, err := c.checkExpr(e.X)
	if err != nil {
		return nil, err
	}
	idx, err := c.checkExpr(e.Idx)
	if err != nil {
		return nil, err
	}
	e.X, e.Idx = x, idx
	if idx.Type() != T(KInt) {
		return nil, errf(e.P, "index must be int, got %s", idx.Type())
	}
	xt := x.Type()
	switch {
	case xt.IsArray():
		elem := xt
		elem.ArrayLen = 0
		e.T = elem
		if cv := idx.ConstVal(); cv != nil {
			if i := cv.Int(); i < 0 || i >= xt.ArrayLen {
				return nil, errf(e.P, "array index %d out of range [0,%d)", i, xt.ArrayLen)
			}
		}
	case xt.IsVector():
		comp, _ := VectorOf(xt.ComponentKind(), 1)
		e.T = comp
		if cv := idx.ConstVal(); cv != nil {
			if i := cv.Int(); i < 0 || i >= xt.Components() {
				return nil, errf(e.P, "vector index %d out of range [0,%d)", i, xt.Components())
			}
		}
	case xt.IsMatrix():
		col, _ := VectorOf(KFloat, xt.MatrixCols())
		e.T = col
		if cv := idx.ConstVal(); cv != nil {
			if i := cv.Int(); i < 0 || i >= xt.MatrixCols() {
				return nil, errf(e.P, "matrix column %d out of range [0,%d)", i, xt.MatrixCols())
			}
		}
	default:
		return nil, errf(e.P, "type %s cannot be indexed", xt)
	}
	return e, nil
}

var swizzleSets = []string{"xyzw", "rgba", "stpq"}

func (c *checker) checkFieldSelect(e *FieldSelect) (Expr, error) {
	x, err := c.checkExpr(e.X)
	if err != nil {
		return nil, err
	}
	e.X = x
	xt := x.Type()
	if !xt.IsVector() {
		return nil, errf(e.P, "field selection %q on non-vector type %s", e.Field, xt)
	}
	if len(e.Field) == 0 || len(e.Field) > 4 {
		return nil, errf(e.P, "swizzle %q must select 1 to 4 components", e.Field)
	}
	var set string
	for _, s := range swizzleSets {
		if strings.IndexByte(s, e.Field[0]) >= 0 {
			set = s
			break
		}
	}
	if set == "" {
		return nil, errf(e.P, "invalid swizzle component %q", string(e.Field[0]))
	}
	comps := make([]int, len(e.Field))
	for i := 0; i < len(e.Field); i++ {
		ci := strings.IndexByte(set, e.Field[i])
		if ci < 0 {
			return nil, errf(e.P, "swizzle %q mixes component sets", e.Field)
		}
		if ci >= xt.Components() {
			return nil, errf(e.P, "swizzle component %q out of range for %s", string(e.Field[i]), xt)
		}
		comps[i] = ci
	}
	e.Comps = comps
	rt, ok := VectorOf(xt.ComponentKind(), len(comps))
	if !ok {
		return nil, errf(e.P, "invalid swizzle result")
	}
	e.T = rt
	if cv := x.ConstVal(); cv != nil {
		vals := make([]float64, len(comps))
		for i, ci := range comps {
			if ci < len(cv.Vals) {
				vals[i] = cv.Vals[ci]
			}
		}
		e.C = &ConstValue{T: rt, Vals: vals}
	}
	return e, nil
}

func (c *checker) checkCall(e *Call) (Expr, error) {
	for i, a := range e.Args {
		ca, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		e.Args[i] = ca
	}
	// Constructor?
	if k, ok := typeByName[e.Name]; ok {
		return c.checkCtor(e, T(k))
	}
	// Builtin?
	if sigs := LookupBuiltin(e.Name); len(sigs) > 0 {
		return c.checkBuiltinCall(e, sigs)
	}
	// User function (must already be defined: enforces no recursion, as
	// GLSL ES requires).
	fn, ok := c.out.Functions[e.Name]
	if !ok {
		return nil, errf(e.P, "call to undefined function %q (functions must be defined before use; recursion is not allowed)", e.Name)
	}
	if len(e.Args) != len(fn.Params) {
		return nil, errf(e.P, "function %q expects %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))
	}
	for i, a := range e.Args {
		if !typesEqual(a.Type(), fn.Params[i].DeclType) {
			return nil, errf(a.Pos(), "argument %d of %q: cannot pass %s as %s", i+1, e.Name, a.Type(), fn.Params[i].DeclType)
		}
		if fn.Params[i].Qualifier != ParamIn {
			if ok, why := c.isLValue(a); !ok {
				return nil, errf(a.Pos(), "argument %d of %q is %s and needs an l-value: %s", i+1, e.Name, fn.Params[i].Qualifier, why)
			}
		}
	}
	e.Func = fn
	e.T = fn.Ret
	return e, nil
}

func (c *checker) checkBuiltinCall(e *Call, sigs []BuiltinSig) (Expr, error) {
	var argTypes []Type
	for _, a := range e.Args {
		argTypes = append(argTypes, a.Type())
	}
outer:
	for i := range sigs {
		sig := &sigs[i]
		if len(sig.Params) != len(argTypes) {
			continue
		}
		for j, pt := range sig.Params {
			if !typesEqual(pt, argTypes[j]) {
				continue outer
			}
		}
		if sig.Ext != "" && !c.extEnabled(sig.Ext) {
			return nil, errf(e.P, "builtin %q requires #extension %s : enable", e.Name, sig.Ext)
		}
		if sig.FragmentOnly && c.opts.Stage != StageFragment {
			return nil, errf(e.P, "%q is not available in vertex shaders on this hardware class (0 vertex texture units)", e.Name)
		}
		e.Builtin = sig
		e.T = sig.Ret
		e.C = foldBuiltin(sig, e.Args)
		return e, nil
	}
	return nil, errf(e.P, "no overload of builtin %q matches argument types %s", e.Name, formatTypes(argTypes))
}

func formatTypes(ts []Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// foldBuiltin folds pure builtins over constant arguments — enough for
// constant loop bounds like min(A, B) or floor(x).
func foldBuiltin(sig *BuiltinSig, args []Expr) *ConstValue {
	cvs := make([]*ConstValue, len(args))
	for i, a := range args {
		cvs[i] = a.ConstVal()
		if cvs[i] == nil {
			return nil
		}
	}
	n := sig.Ret.Components()
	get := func(cv *ConstValue, i int) float64 {
		if len(cv.Vals) == 1 {
			return cv.Vals[0]
		}
		if i < len(cv.Vals) {
			return cv.Vals[i]
		}
		return 0
	}
	comp := func(f func(i int) float64) *ConstValue {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = f(i)
		}
		return &ConstValue{T: sig.Ret, Vals: vals}
	}
	switch sig.Op {
	case BAbs:
		return comp(func(i int) float64 { return math.Abs(get(cvs[0], i)) })
	case BFloor:
		return comp(func(i int) float64 { return math.Floor(get(cvs[0], i)) })
	case BCeil:
		return comp(func(i int) float64 { return math.Ceil(get(cvs[0], i)) })
	case BFract:
		return comp(func(i int) float64 { v := get(cvs[0], i); return v - math.Floor(v) })
	case BSign:
		return comp(func(i int) float64 {
			v := get(cvs[0], i)
			if v > 0 {
				return 1
			}
			if v < 0 {
				return -1
			}
			return 0
		})
	case BMin:
		return comp(func(i int) float64 { return math.Min(get(cvs[0], i), get(cvs[1], i)) })
	case BMax:
		return comp(func(i int) float64 { return math.Max(get(cvs[0], i), get(cvs[1], i)) })
	case BClamp:
		return comp(func(i int) float64 {
			return math.Min(math.Max(get(cvs[0], i), get(cvs[1], i)), get(cvs[2], i))
		})
	case BSqrt:
		return comp(func(i int) float64 { return math.Sqrt(get(cvs[0], i)) })
	case BPow:
		return comp(func(i int) float64 { return math.Pow(get(cvs[0], i), get(cvs[1], i)) })
	case BExp2:
		return comp(func(i int) float64 { return math.Exp2(get(cvs[0], i)) })
	case BLog2:
		return comp(func(i int) float64 { return math.Log2(get(cvs[0], i)) })
	case BMod:
		return comp(func(i int) float64 {
			x, y := get(cvs[0], i), get(cvs[1], i)
			return x - y*math.Floor(x/y)
		})
	}
	return nil
}

// checkCtor validates a type constructor call.
func (c *checker) checkCtor(e *Call, ct Type) (Expr, error) {
	if ct.Kind == KVoid || ct.IsSampler() {
		return nil, errf(e.P, "cannot construct values of type %s", ct)
	}
	e.Ctor = true
	e.CtorType = ct
	e.T = ct
	if len(e.Args) == 0 {
		return nil, errf(e.P, "constructor %s requires arguments", ct)
	}
	for _, a := range e.Args {
		at := a.Type()
		if at.IsSampler() || at.IsArray() || at.Kind == KVoid {
			return nil, errf(a.Pos(), "cannot use %s in a constructor", at)
		}
	}
	need := ct.Components()
	if ct.IsScalar() {
		// Explicit scalar conversion from any scalar/vector first
		// component.
		if len(e.Args) != 1 {
			return nil, errf(e.P, "scalar constructor %s takes exactly one argument", ct)
		}
		e.C = foldCtor(ct, e.Args)
		return e, nil
	}
	if ct.IsMatrix() {
		if len(e.Args) == 1 {
			at := e.Args[0].Type()
			if at.IsScalar() || at == ct {
				return e, nil
			}
			return nil, errf(e.P, "matrix constructor %s from %s is not supported", ct, at)
		}
		total := 0
		for _, a := range e.Args {
			if a.Type().IsMatrix() {
				return nil, errf(a.Pos(), "matrix constructors from component lists cannot take matrix arguments")
			}
			total += a.Type().Components()
		}
		if total != need {
			return nil, errf(e.P, "constructor %s needs %d components, got %d", ct, need, total)
		}
		return e, nil
	}
	// Vector constructor.
	if len(e.Args) == 1 {
		at := e.Args[0].Type()
		if at.IsScalar() {
			e.C = foldCtor(ct, e.Args)
			return e, nil // replicate
		}
		if at.IsVector() && at.Components() >= need {
			e.C = foldCtor(ct, e.Args)
			return e, nil // truncate
		}
	}
	total := 0
	for _, a := range e.Args {
		total += a.Type().Components()
	}
	if total < need {
		return nil, errf(e.P, "constructor %s needs %d components, got %d", ct, need, total)
	}
	// GLSL allows extra components only from the final argument's tail;
	// we implement the strict reading (exact match) except single-arg
	// truncation handled above.
	if total > need {
		return nil, errf(e.P, "constructor %s has %d excess components", ct, total-need)
	}
	e.C = foldCtor(ct, e.Args)
	return e, nil
}

func foldCtor(ct Type, args []Expr) *ConstValue {
	var flat []float64
	for _, a := range args {
		cv := a.ConstVal()
		if cv == nil {
			return nil
		}
		flat = append(flat, cv.Vals...)
	}
	n := ct.Components()
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		var v float64
		if len(flat) == 1 {
			v = flat[0]
		} else if i < len(flat) {
			v = flat[i]
		}
		switch ct.ComponentKind() {
		case KInt:
			v = math.Trunc(v)
		case KBool:
			if v != 0 {
				v = 1
			}
		}
		vals[i] = v
	}
	return &ConstValue{T: ct, Vals: vals}
}
