package glsl

import (
	"testing"
	"testing/quick"
)

// Second coverage pass for semantic analysis: constant folding, array
// rules, loop shapes, and type-system corners.

func TestConstFoldingArithmetic(t *testing.T) {
	cs := frag(t, fragHeader+`
const float A = 2.0 * 3.0 + 1.0;   // 7
const float B = (1.0 / 4.0) - 2.0; // -1.75
const int   C = 7 / 2;             // 3 (integer division)
const bool  D = 3.0 > 2.0 && !(1 == 2);
const float E = D ? A : B;
void main(){ gl_FragColor = vec4(A, B, float(C), E); }
`)
	vals := map[string]float64{}
	for _, d := range cs.Prog.Decls {
		if g, ok := d.(*GlobalDecl); ok && g.Sym.Const != nil {
			vals[g.Name] = g.Sym.Const.Float()
		}
	}
	want := map[string]float64{"A": 7, "B": -1.75, "C": 3, "D": 1, "E": 7}
	for name, w := range want {
		if vals[name] != w {
			t.Errorf("const %s = %g, want %g", name, vals[name], w)
		}
	}
}

func TestConstFoldingVectorsAndSwizzles(t *testing.T) {
	cs := frag(t, fragHeader+`
const vec4 V = vec4(1.0, 2.0, 3.0, 4.0);
const vec2 S = V.wy;        // (4, 2)
const float X = V.z;        // 3
const vec3 R = vec3(0.5);   // replicate
void main(){ gl_FragColor = vec4(S, X, R.x); }
`)
	for _, d := range cs.Prog.Decls {
		g, ok := d.(*GlobalDecl)
		if !ok || g.Sym.Const == nil {
			continue
		}
		switch g.Name {
		case "S":
			if g.Sym.Const.Vals[0] != 4 || g.Sym.Const.Vals[1] != 2 {
				t.Errorf("S = %v", g.Sym.Const.Vals)
			}
		case "X":
			if g.Sym.Const.Float() != 3 {
				t.Errorf("X = %v", g.Sym.Const.Float())
			}
		case "R":
			if g.Sym.Const.Vals[2] != 0.5 {
				t.Errorf("R = %v", g.Sym.Const.Vals)
			}
		}
	}
}

func TestConstFoldingBuiltins(t *testing.T) {
	cs := frag(t, fragHeader+`
const float F = floor(3.7);
const float M = max(2.0, min(5.0, 3.0));
const float C = clamp(9.0, 0.0, 1.0);
const float Q = sqrt(16.0);
const float MO = mod(7.0, 3.0);
void main(){ gl_FragColor = vec4(F + M + C + Q + MO); }
`)
	want := map[string]float64{"F": 3, "M": 3, "C": 1, "Q": 4, "MO": 1}
	for _, d := range cs.Prog.Decls {
		if g, ok := d.(*GlobalDecl); ok && g.Sym.Const != nil {
			if w, ok := want[g.Name]; ok && g.Sym.Const.Float() != w {
				t.Errorf("const %s = %g, want %g", g.Name, g.Sym.Const.Float(), w)
			}
		}
	}
}

// Property: the front end's integer constant folding of a+b*c agrees with
// Go arithmetic for in-range inputs.
func TestConstFoldProperty(t *testing.T) {
	f := func(a, b, c int16) bool {
		src := fragHeader +
			"const int R = " + itos(int(a)) + " + " + itos(int(b)) + " * " + itos(int(c)) + ";\n" +
			"void main(){ gl_FragColor = vec4(float(R)); }"
		cs, err := Frontend(src, CompileOptions{Stage: StageFragment})
		if err != nil {
			return false
		}
		for _, d := range cs.Prog.Decls {
			if g, ok := d.(*GlobalDecl); ok && g.Name == "R" {
				return g.Sym.Const.Int() == int(a)+int(b)*int(c)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itos(v int) string {
	if v < 0 {
		return "(0 - " + itosPos(-v) + ")"
	}
	return itosPos(v)
}

func itosPos(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestLoopTripShapes(t *testing.T) {
	cases := []struct {
		header string
		trip   int
	}{
		{"for (int i = 0; i < 5; i++)", 5},
		{"for (int i = 0; i <= 5; i++)", 6},
		{"for (int i = 5; i > 0; i--)", 5},
		{"for (int i = 0; i != 4; i += 2)", 2},
		{"for (int i = 0; i < 10; i += 3)", 4},
		{"for (float i = 0.0; i < 1.0; i += 0.25)", 4},
		{"for (int i = 0; i < 7; i = i + 2)", 4},
		{"for (int i = 8; i >= 0; i -= 4)", 3},
		{"for (int i = 3; i < 3; i++)", 0}, // zero-trip
	}
	for _, c := range cases {
		cs := frag(t, fragHeader+`void main(){
	float acc = 0.0;
	`+c.header+` { acc += 1.0; }
	gl_FragColor = vec4(acc);
}`)
		if len(cs.Loops) != 1 {
			t.Fatalf("%s: loops = %d", c.header, len(cs.Loops))
		}
		for _, info := range cs.Loops {
			if info.Trip != c.trip {
				t.Errorf("%s: trip = %d, want %d", c.header, info.Trip, c.trip)
			}
		}
	}
}

func TestLoopRunawayRejected(t *testing.T) {
	// A loop whose step moves away from the bound never terminates.
	fragErr(t, fragHeader+"void main(){ for (int i = 0; i > -1; i++) {} gl_FragColor = vec4(0.0);}", "trip count")
}

func TestNestedLoops(t *testing.T) {
	cs := frag(t, fragHeader+`void main(){
	float acc = 0.0;
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 4; j++) { acc += 1.0; }
	}
	gl_FragColor = vec4(acc / 12.0);
}`)
	if len(cs.Loops) != 2 {
		t.Errorf("nested loops = %d", len(cs.Loops))
	}
}

func TestInnerLoopMayUseOuterIndexInBody(t *testing.T) {
	// The outer index is frozen but readable.
	frag(t, fragHeader+`void main(){
	float acc = 0.0;
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 3; j++) { acc += float(i) * float(j); }
	}
	gl_FragColor = vec4(acc);
}`)
	// But an inner loop bound must still be constant (not the outer
	// index).
	fragErr(t, fragHeader+`void main(){
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < i; j++) { }
	}
	gl_FragColor = vec4(0.0);
}`, "constant expression")
}

func TestArrayRules(t *testing.T) {
	// Arrays of samplers are uniforms; constant indexing required at the
	// backend but sema accepts int expressions.
	frag(t, fragHeader+`
uniform float w[8];
void main(){
	float acc = w[0] + w[7];
	gl_FragColor = vec4(acc);
}`)
	fragErr(t, fragHeader+"uniform float w[4];\nvoid main(){ gl_FragColor = vec4(w[1.0]); }", "index must be int")
	// Arrays are not assignable wholesale in ES2 — our subset also rejects
	// arrays as initialisers.
	fragErr(t, fragHeader+"void main(){ float a[2]; float b[2]; a = b; gl_FragColor=vec4(0.0);}", "arrays cannot be assigned")
}

func TestVaryingArraysCounted(t *testing.T) {
	cs, err := Frontend(`
varying vec4 v_rows[3];
void main(){
	gl_Position = vec4(0.0);
	v_rows[0] = vec4(1.0);
	v_rows[1] = vec4(2.0);
	v_rows[2] = vec4(3.0);
}`, CompileOptions{Stage: StageVertex})
	if err != nil {
		t.Fatal(err)
	}
	if cs.VaryingVectors != 3 {
		t.Errorf("varying vectors = %d, want 3", cs.VaryingVectors)
	}
}

func TestMatrixUniformSlotCount(t *testing.T) {
	cs := frag(t, fragHeader+`
uniform mat4 m;
uniform mat2 m2[3];
void main(){ gl_FragColor = m[0] + vec4(m2[1][0], 0.0, 0.0); }`)
	// mat4 = 4 vectors, mat2[3] = 2*3 = 6.
	if cs.UniformVectors != 10 {
		t.Errorf("uniform vectors = %d, want 10", cs.UniformVectors)
	}
}

func TestScalarVectorPromotion(t *testing.T) {
	frag(t, fragHeader+`void main(){
	vec3 v = vec3(1.0, 2.0, 3.0);
	vec3 a = v + 1.0;
	vec3 b = 2.0 * v;
	vec3 c = v / 4.0;
	vec3 d = 1.0 - v;
	gl_FragColor = vec4(a + b + c + d, 1.0);
}`)
	// int scalar with float vector is NOT promoted.
	fragErr(t, fragHeader+"void main(){ vec2 v = vec2(0.0) + 1; gl_FragColor=vec4(v,0.0,0.0);}", "not defined")
}

func TestAssignOperators(t *testing.T) {
	frag(t, fragHeader+`void main(){
	vec2 v = vec2(4.0, 8.0);
	v += vec2(1.0);
	v -= 0.5;
	v *= 2.0;
	v /= vec2(2.0, 4.0);
	float f = 3.0;
	f *= f;
	gl_FragColor = vec4(v, f, 1.0);
}`)
	fragErr(t, fragHeader+"void main(){ float f = 1.0; f += vec2(1.0).x + vec2(0.0); gl_FragColor=vec4(f);}", "")
}

func TestTernaryNonConstCondition(t *testing.T) {
	cs := frag(t, fragHeader+`
uniform float u;
void main(){
	float x = u > 0.5 ? u * 2.0 : u * 3.0;
	gl_FragColor = vec4(x);
}`)
	_ = cs
}

func TestSamplerComparisonRejected(t *testing.T) {
	fragErr(t, fragHeader+`
uniform sampler2D a;
uniform sampler2D b;
void main(){ gl_FragColor = vec4(a == b ? 1.0 : 0.0); }`, "sampler")
}

func TestVertexAttributeCount(t *testing.T) {
	cs, err := Frontend(`
attribute vec4 a0;
attribute vec2 a1;
attribute mat2 a2;
void main(){ gl_Position = a0 + vec4(a1, a2[0]); }`, CompileOptions{Stage: StageVertex})
	if err != nil {
		t.Fatal(err)
	}
	// vec4=1, vec2=1, mat2=2.
	if cs.AttributeSlots != 4 {
		t.Errorf("attribute slots = %d, want 4", cs.AttributeSlots)
	}
}

func TestGlobalMutableState(t *testing.T) {
	frag(t, fragHeader+`
float counter = 0.0;
void bump() { counter += 1.0; }
void main(){
	bump();
	bump();
	gl_FragColor = vec4(counter * 0.5);
}`)
}

func TestPrecisionQualifiersRecorded(t *testing.T) {
	cs := frag(t, "precision highp float;\n"+`
uniform lowp vec4 cheap;
uniform float defaulted;
void main(){ gl_FragColor = cheap + vec4(defaulted); }`)
	for _, u := range cs.Uniforms {
		switch u.Name {
		case "cheap":
			if u.Prec != PrecLow {
				t.Errorf("cheap precision = %v", u.Prec)
			}
		case "defaulted":
			if u.Prec != PrecHigh {
				t.Errorf("defaulted precision = %v (default float is highp here)", u.Prec)
			}
		}
	}
}
