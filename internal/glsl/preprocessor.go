package glsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Macro is one preprocessor definition.
type Macro struct {
	Name      string
	Params    []string // nil for object-like macros
	IsFunc    bool
	Body      []Token
	DefinedAt Pos
}

// ExtensionBehavior is the behaviour field of an #extension directive.
type ExtensionBehavior string

// Extension behaviours from the GLSL ES specification.
const (
	ExtRequire ExtensionBehavior = "require"
	ExtEnable  ExtensionBehavior = "enable"
	ExtWarn    ExtensionBehavior = "warn"
	ExtDisable ExtensionBehavior = "disable"
)

// PPResult is the output of preprocessing: the expanded token stream plus
// the directives of semantic interest to the compiler driver.
type PPResult struct {
	Tokens     []Token
	Version    int // 0 when no #version directive was present
	Extensions map[string]ExtensionBehavior
}

// Preprocessor implements the GLSL ES 1.00 preprocessor subset: object- and
// function-like #define, #undef, #ifdef/#ifndef/#if/#elif/#else/#endif with
// integer constant expressions, #error, #version, #extension, #pragma and
// #line (the last two are accepted and ignored).
type Preprocessor struct {
	macros map[string]Macro
	// KnownExtensions lists extension names the implementation accepts
	// with "enable"/"require". Unknown extensions fail on "require" as
	// the spec demands.
	KnownExtensions map[string]bool
}

// NewPreprocessor returns a preprocessor with no predefined macros except
// GL_ES=1, as mandated by the specification.
func NewPreprocessor() *Preprocessor {
	pp := &Preprocessor{macros: make(map[string]Macro), KnownExtensions: make(map[string]bool)}
	pp.Define("GL_ES", "1")
	return pp
}

// Define installs an object-like macro whose body is the lexed value. It is
// used both by #define and by the compiler driver to inject configuration
// constants (the way build systems pass -DBLOCK_SIZE=16).
func (pp *Preprocessor) Define(name, value string) error {
	toks, err := LexAll(value)
	if err != nil {
		return fmt.Errorf("glsl: bad macro value for %s: %w", name, err)
	}
	pp.macros[name] = Macro{Name: name, Body: toks}
	return nil
}

type ppState struct {
	active   bool // current branch emits tokens
	everTrue bool // some branch of this #if chain was taken
	elseSeen bool
}

// Process runs the preprocessor over src and returns the expanded tokens.
func (pp *Preprocessor) Process(src string) (*PPResult, error) {
	res := &PPResult{Extensions: make(map[string]ExtensionBehavior)}
	var stack []ppState
	activeNow := func() bool {
		for _, s := range stack {
			if !s.active {
				return false
			}
		}
		return true
	}

	lines := splitLogicalLines(src)
	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln.text)
		if strings.HasPrefix(trimmed, "#") {
			if err := pp.directive(trimmed, ln.line, &stack, activeNow, res); err != nil {
				return nil, err
			}
			continue
		}
		if !activeNow() || trimmed == "" {
			continue
		}
		toks, err := lexLine(ln.text, ln.line)
		if err != nil {
			return nil, err
		}
		out, err := pp.expand(toks, nil)
		if err != nil {
			return nil, err
		}
		res.Tokens = append(res.Tokens, out...)
	}
	if len(stack) != 0 {
		return nil, errf(Pos{Line: len(lines), Col: 1}, "unterminated #if/#ifdef")
	}
	return res, nil
}

type logicalLine struct {
	text string
	line int
}

// splitLogicalLines splits on newlines, merging lines ending in backslash
// continuations (used by multi-line #define).
func splitLogicalLines(src string) []logicalLine {
	raw := strings.Split(src, "\n")
	var out []logicalLine
	for i := 0; i < len(raw); i++ {
		line := raw[i]
		start := i
		for strings.HasSuffix(strings.TrimRight(line, " \t\r"), "\\") && i+1 < len(raw) {
			line = strings.TrimSuffix(strings.TrimRight(line, " \t\r"), "\\") + " " + raw[i+1]
			i++
		}
		out = append(out, logicalLine{text: line, line: start + 1})
	}
	return out
}

// lexLine tokenises one logical line, fixing up token line numbers.
func lexLine(text string, line int) ([]Token, error) {
	toks, err := LexAll(text)
	if err != nil {
		if e, ok := err.(*Error); ok {
			e.Pos.Line = line
		}
		return nil, err
	}
	for i := range toks {
		toks[i].Pos.Line = line
	}
	return toks, nil
}

func (pp *Preprocessor) directive(trimmed string, line int, stack *[]ppState, activeNow func() bool, res *PPResult) error {
	pos := Pos{Line: line, Col: 1}
	body := strings.TrimSpace(trimmed[1:])
	if body == "" { // null directive
		return nil
	}
	name := body
	rest := ""
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		name, rest = body[:i], strings.TrimSpace(body[i+1:])
	}
	switch name {
	case "ifdef", "ifndef":
		cond := false
		if activeNow() {
			_, defined := pp.macros[rest]
			cond = defined == (name == "ifdef")
		}
		*stack = append(*stack, ppState{active: cond, everTrue: cond})
	case "if":
		cond := false
		if activeNow() {
			v, err := pp.evalCondition(rest, pos)
			if err != nil {
				return err
			}
			cond = v != 0
		}
		*stack = append(*stack, ppState{active: cond, everTrue: cond})
	case "elif":
		if len(*stack) == 0 {
			return errf(pos, "#elif without #if")
		}
		top := &(*stack)[len(*stack)-1]
		if top.elseSeen {
			return errf(pos, "#elif after #else")
		}
		if top.everTrue {
			top.active = false
		} else {
			outerActive := true
			for _, s := range (*stack)[:len(*stack)-1] {
				outerActive = outerActive && s.active
			}
			if outerActive {
				v, err := pp.evalCondition(rest, pos)
				if err != nil {
					return err
				}
				top.active = v != 0
				top.everTrue = top.active
			}
		}
	case "else":
		if len(*stack) == 0 {
			return errf(pos, "#else without #if")
		}
		top := &(*stack)[len(*stack)-1]
		if top.elseSeen {
			return errf(pos, "duplicate #else")
		}
		top.elseSeen = true
		top.active = !top.everTrue
		top.everTrue = true
	case "endif":
		if len(*stack) == 0 {
			return errf(pos, "#endif without #if")
		}
		*stack = (*stack)[:len(*stack)-1]
	case "define":
		if !activeNow() {
			return nil
		}
		return pp.parseDefine(rest, line)
	case "undef":
		if !activeNow() {
			return nil
		}
		delete(pp.macros, strings.TrimSpace(rest))
	case "error":
		if !activeNow() {
			return nil
		}
		return errf(pos, "#error %s", rest)
	case "version":
		if !activeNow() {
			return nil
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return errf(pos, "#version requires a number")
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil {
			return errf(pos, "#version requires a number, got %q", fields[0])
		}
		if v != 100 {
			return errf(pos, "unsupported shading language version %d (this implementation supports 100 es)", v)
		}
		res.Version = v
	case "extension":
		if !activeNow() {
			return nil
		}
		parts := strings.SplitN(rest, ":", 2)
		if len(parts) != 2 {
			return errf(pos, "#extension requires 'name : behavior'")
		}
		ext := strings.TrimSpace(parts[0])
		beh := ExtensionBehavior(strings.TrimSpace(parts[1]))
		switch beh {
		case ExtRequire, ExtEnable, ExtWarn, ExtDisable:
		default:
			return errf(pos, "invalid extension behavior %q", beh)
		}
		if beh == ExtRequire && !pp.KnownExtensions[ext] && ext != "all" {
			return errf(pos, "extension %q is not supported", ext)
		}
		res.Extensions[ext] = beh
		// Extensions conventionally define a macro of the same name.
		if (beh == ExtEnable || beh == ExtRequire) && pp.KnownExtensions[ext] {
			pp.Define(ext, "1")
		}
	case "pragma", "line":
		// Accepted and ignored.
	default:
		return errf(pos, "unknown preprocessor directive #%s", name)
	}
	return nil
}

func (pp *Preprocessor) parseDefine(rest string, line int) error {
	pos := Pos{Line: line, Col: 1}
	toks, err := lexLine(rest, line)
	if err != nil {
		return err
	}
	if len(toks) == 0 || (toks[0].Kind != TokIdent && toks[0].Kind != TokKeyword) {
		return errf(pos, "#define requires a macro name")
	}
	name := toks[0].Text
	if keywords[name] {
		return errf(pos, "cannot #define keyword %q", name)
	}
	if strings.HasPrefix(name, "GL_") {
		return errf(pos, "macro names beginning with GL_ are reserved (%q)", name)
	}
	i := 1
	m := Macro{Name: name, DefinedAt: pos}
	// Function-like only when '(' immediately follows the name in source;
	// since we lex the whole line we approximate with the next token being
	// '(' at an adjacent column.
	if i < len(toks) && toks[i].Kind == TokLParen && toks[i].Pos.Col == toks[0].Pos.Col+len(name) {
		m.IsFunc = true
		i++
		for i < len(toks) && toks[i].Kind != TokRParen {
			if toks[i].Kind != TokIdent {
				return errf(toks[i].Pos, "macro parameter must be an identifier")
			}
			m.Params = append(m.Params, toks[i].Text)
			i++
			if i < len(toks) && toks[i].Kind == TokComma {
				i++
			}
		}
		if i >= len(toks) {
			return errf(pos, "unterminated macro parameter list")
		}
		i++ // consume ')'
	}
	m.Body = toks[i:]
	pp.macros[name] = m
	return nil
}

// expand performs recursive macro expansion on a token slice. hideset holds
// macro names currently being expanded, to stop self-referential loops.
func (pp *Preprocessor) expand(toks []Token, hideset map[string]bool) ([]Token, error) {
	var out []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != TokIdent {
			out = append(out, t)
			continue
		}
		m, ok := pp.macros[t.Text]
		if !ok || hideset[t.Text] {
			out = append(out, t)
			continue
		}
		if m.IsFunc {
			if i+1 >= len(toks) || toks[i+1].Kind != TokLParen {
				out = append(out, t) // name without call: not expanded
				continue
			}
			args, consumed, err := collectMacroArgs(toks[i+1:], t.Pos)
			if err != nil {
				return nil, err
			}
			i += consumed
			if len(args) != len(m.Params) && !(len(m.Params) == 0 && len(args) == 1 && len(args[0]) == 0) {
				return nil, errf(t.Pos, "macro %s expects %d arguments, got %d", m.Name, len(m.Params), len(args))
			}
			// Substitute parameters, then rescan.
			var body []Token
			for _, bt := range m.Body {
				if bt.Kind == TokIdent {
					if idx := indexOf(m.Params, bt.Text); idx >= 0 && idx < len(args) {
						for _, at := range args[idx] {
							at.Pos = t.Pos
							body = append(body, at)
						}
						continue
					}
				}
				bt.Pos = t.Pos
				body = append(body, bt)
			}
			sub, err := pp.expandWith(body, hideset, m.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			continue
		}
		body := make([]Token, len(m.Body))
		for j, bt := range m.Body {
			bt.Pos = t.Pos
			body[j] = bt
		}
		sub, err := pp.expandWith(body, hideset, m.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

func (pp *Preprocessor) expandWith(toks []Token, hideset map[string]bool, plus string) ([]Token, error) {
	hs := make(map[string]bool, len(hideset)+1)
	for k := range hideset {
		hs[k] = true
	}
	hs[plus] = true
	return pp.expand(toks, hs)
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// collectMacroArgs parses "( arg, arg, ... )" starting at toks[0] == '('.
// It returns the argument token slices and the number of tokens consumed
// including both parentheses.
func collectMacroArgs(toks []Token, at Pos) ([][]Token, int, error) {
	depth := 0
	var args [][]Token
	var cur []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		switch t.Kind {
		case TokLParen:
			depth++
			if depth > 1 {
				cur = append(cur, t)
			}
		case TokRParen:
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i + 1, nil
			}
			cur = append(cur, t)
		case TokComma:
			if depth == 1 {
				args = append(args, cur)
				cur = nil
			} else {
				cur = append(cur, t)
			}
		default:
			cur = append(cur, t)
		}
	}
	return nil, 0, errf(at, "unterminated macro argument list")
}

// evalCondition evaluates a #if / #elif integer constant expression.
// Supported: integer literals, defined(NAME)/defined NAME, macro expansion,
// unary !,-,+, and binary * / % + - < > <= >= == != && ||.
func (pp *Preprocessor) evalCondition(expr string, pos Pos) (int64, error) {
	toks, err := lexLine(expr, pos.Line)
	if err != nil {
		return 0, err
	}
	// Resolve defined(...) before macro expansion.
	var resolved []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == TokIdent && t.Text == "defined" {
			j := i + 1
			paren := false
			if j < len(toks) && toks[j].Kind == TokLParen {
				paren = true
				j++
			}
			if j >= len(toks) || toks[j].Kind != TokIdent {
				return 0, errf(t.Pos, "defined requires a macro name")
			}
			name := toks[j].Text
			if paren {
				j++
				if j >= len(toks) || toks[j].Kind != TokRParen {
					return 0, errf(t.Pos, "missing ')' after defined(%s", name)
				}
			}
			val := "0"
			if _, ok := pp.macros[name]; ok {
				val = "1"
			}
			resolved = append(resolved, Token{Kind: TokIntLit, Text: val, Pos: t.Pos})
			i = j
			continue
		}
		resolved = append(resolved, t)
	}
	expanded, err := pp.expand(resolved, nil)
	if err != nil {
		return 0, err
	}
	// Remaining identifiers evaluate to 0, per the C preprocessor rule.
	e := &condEval{toks: expanded, pos: pos}
	v, err := e.parseBinary(0)
	if err != nil {
		return 0, err
	}
	if e.i != len(e.toks) {
		return 0, errf(pos, "trailing tokens in preprocessor condition")
	}
	return v, nil
}

type condEval struct {
	toks []Token
	i    int
	pos  Pos
}

func (e *condEval) peek() Token {
	if e.i >= len(e.toks) {
		return Token{Kind: TokEOF, Pos: e.pos}
	}
	return e.toks[e.i]
}

var condPrec = map[TokenKind]int{
	TokOr: 1, TokAnd: 2,
	TokEq: 3, TokNe: 3,
	TokLt: 4, TokGt: 4, TokLe: 4, TokGe: 4,
	TokPlus: 5, TokMinus: 5,
	TokStar: 6, TokSlash: 6,
}

func (e *condEval) parseBinary(minPrec int) (int64, error) {
	lhs, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		op := e.peek()
		prec, ok := condPrec[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		e.i++
		rhs, err := e.parseBinary(prec + 1)
		if err != nil {
			return 0, err
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch op.Kind {
		case TokOr:
			lhs = b2i(lhs != 0 || rhs != 0)
		case TokAnd:
			lhs = b2i(lhs != 0 && rhs != 0)
		case TokEq:
			lhs = b2i(lhs == rhs)
		case TokNe:
			lhs = b2i(lhs != rhs)
		case TokLt:
			lhs = b2i(lhs < rhs)
		case TokGt:
			lhs = b2i(lhs > rhs)
		case TokLe:
			lhs = b2i(lhs <= rhs)
		case TokGe:
			lhs = b2i(lhs >= rhs)
		case TokPlus:
			lhs += rhs
		case TokMinus:
			lhs -= rhs
		case TokStar:
			lhs *= rhs
		case TokSlash:
			if rhs == 0 {
				return 0, errf(op.Pos, "division by zero in preprocessor condition")
			}
			lhs /= rhs
		}
	}
}

func (e *condEval) parseUnary() (int64, error) {
	t := e.peek()
	switch t.Kind {
	case TokNot:
		e.i++
		v, err := e.parseUnary()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case TokMinus:
		e.i++
		v, err := e.parseUnary()
		return -v, err
	case TokPlus:
		e.i++
		return e.parseUnary()
	case TokLParen:
		e.i++
		v, err := e.parseBinary(0)
		if err != nil {
			return 0, err
		}
		if e.peek().Kind != TokRParen {
			return 0, errf(e.peek().Pos, "missing ')' in preprocessor condition")
		}
		e.i++
		return v, nil
	case TokIntLit:
		e.i++
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return 0, errf(t.Pos, "bad integer %q", t.Text)
		}
		return v, nil
	case TokIdent, TokKeyword:
		e.i++
		if t.Text == "true" {
			return 1, nil
		}
		return 0, nil // undefined identifiers are 0
	}
	return 0, errf(t.Pos, "unexpected %s in preprocessor condition", t)
}
