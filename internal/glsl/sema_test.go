package glsl

import (
	"strings"
	"testing"
)

// frag compiles a fragment shader and returns the checked result.
func frag(t *testing.T, src string) *CheckedShader {
	t.Helper()
	cs, err := Frontend(src, CompileOptions{Stage: StageFragment})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	return cs
}

// fragErr compiles a fragment shader expecting a failure containing substr.
func fragErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := Frontend(src, CompileOptions{Stage: StageFragment})
	if err == nil {
		t.Fatalf("expected error containing %q, got success", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err.Error(), substr)
	}
}

const fragHeader = "precision mediump float;\n"

func TestSemaMinimalFragment(t *testing.T) {
	cs := frag(t, fragHeader+`void main() { gl_FragColor = vec4(1.0); }`)
	if cs.Main == nil {
		t.Fatal("main not found")
	}
	if !cs.WritesFragColor {
		t.Error("WritesFragColor not recorded")
	}
}

func TestSemaMissingMain(t *testing.T) {
	fragErr(t, fragHeader+"float helper() { return 1.0; }", "missing void main()")
}

func TestSemaMissingFloatPrecision(t *testing.T) {
	fragErr(t, "void main() { gl_FragColor = vec4(0.0); }", "default float precision")
}

func TestSemaVertexHasDefaultPrecision(t *testing.T) {
	_, err := Frontend("void main() { gl_Position = vec4(0.0); }", CompileOptions{Stage: StageVertex})
	if err != nil {
		t.Fatalf("vertex shader needs no precision declaration: %v", err)
	}
}

func TestSemaNoImplicitConversion(t *testing.T) {
	fragErr(t, fragHeader+"void main() { float x = 1; }", "cannot initialize")
	fragErr(t, fragHeader+"void main() { float x = 1.0 + 1; }", "no implicit conversions")
}

func TestSemaInterface(t *testing.T) {
	cs := frag(t, fragHeader+`
uniform sampler2D tex0;
uniform vec4 scale;
uniform float offs[4];
varying vec2 v_coord;
void main() { gl_FragColor = texture2D(tex0, v_coord) * scale + offs[0]; }
`)
	if len(cs.Uniforms) != 3 {
		t.Errorf("uniforms = %d, want 3", len(cs.Uniforms))
	}
	if len(cs.Varyings) != 1 {
		t.Errorf("varyings = %d, want 1", len(cs.Varyings))
	}
	// scale(1) + offs(4) + sampler(1) = 6 uniform vectors.
	if cs.UniformVectors != 6 {
		t.Errorf("UniformVectors = %d, want 6", cs.UniformVectors)
	}
}

func TestSemaAttributeRules(t *testing.T) {
	fragErr(t, fragHeader+"attribute vec4 a;\nvoid main(){gl_FragColor=a;}", "outside a vertex shader")
	_, err := Frontend("attribute vec4 a_pos;\nvoid main(){gl_Position=a_pos;}", CompileOptions{Stage: StageVertex})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Frontend("attribute int a;\nvoid main(){gl_Position=vec4(0.0);}", CompileOptions{Stage: StageVertex})
	if err == nil {
		t.Error("int attribute not rejected")
	}
}

func TestSemaVaryingReadOnlyInFragment(t *testing.T) {
	fragErr(t, fragHeader+"varying vec2 v;\nvoid main(){ v = vec2(0.0); gl_FragColor=vec4(v,0.0,1.0);}", "read-only in fragment")
}

func TestSemaUniformNotAssignable(t *testing.T) {
	fragErr(t, fragHeader+"uniform float u;\nvoid main(){ u = 1.0; gl_FragColor=vec4(u);}", "read-only")
}

func TestSemaConstRules(t *testing.T) {
	frag(t, fragHeader+"const float PI = 3.14159;\nvoid main(){gl_FragColor=vec4(PI);}")
	fragErr(t, fragHeader+"const float X = 1.0;\nvoid main(){ X = 2.0; gl_FragColor=vec4(X);}", "const")
	fragErr(t, fragHeader+"uniform float u;\nconst float X = u;\nvoid main(){gl_FragColor=vec4(X);}", "not a constant expression")
}

func TestSemaSwizzle(t *testing.T) {
	frag(t, fragHeader+`void main() {
	vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
	vec2 a = v.xy;
	vec3 b = v.rgb;
	float c = v.w;
	v.zw = a;
	gl_FragColor = vec4(b, c);
}`)
	fragErr(t, fragHeader+"void main(){ vec4 v=vec4(0.0); vec2 a=v.xr; gl_FragColor=v;}", "mixes component sets")
	fragErr(t, fragHeader+"void main(){ vec2 v=vec2(0.0); float a=v.z; gl_FragColor=vec4(a);}", "out of range")
	fragErr(t, fragHeader+"void main(){ vec4 v=vec4(0.0); v.xx = vec2(1.0); gl_FragColor=v;}", "repeated components")
}

func TestSemaConstructors(t *testing.T) {
	frag(t, fragHeader+`void main() {
	vec4 a = vec4(1.0);                 // scalar replicate
	vec4 b = vec4(vec2(0.0), 0.5, 1.0); // flatten
	vec3 c = vec3(b);                   // truncate
	float d = float(2);                 // explicit conversion
	int e = int(3.7);
	vec4 f = vec4(c, d) * float(e);
	gl_FragColor = a + b + f;
}`)
	fragErr(t, fragHeader+"void main(){ vec4 v = vec4(1.0, 2.0); gl_FragColor=v;}", "needs 4 components")
	fragErr(t, fragHeader+"void main(){ vec2 v = vec2(1.0, 2.0, 3.0); gl_FragColor=vec4(v,0.0,0.0);}", "excess components")
}

func TestSemaBuiltinOverloads(t *testing.T) {
	frag(t, fragHeader+`
uniform sampler2D s;
varying vec2 vc;
void main() {
	vec4 t = texture2D(s, vc);
	float d = dot(t.xyz, vec3(1.0));
	vec3 cl = clamp(t.rgb, 0.0, 1.0);
	vec3 mx = max(cl, vec3(0.1));
	float m = mod(d, 2.0);
	gl_FragColor = vec4(mx * m, 1.0);
}`)
	fragErr(t, fragHeader+"void main(){ float x = dot(1.0, vec2(0.0)); gl_FragColor=vec4(x);}", "no overload")
}

func TestSemaMul24RequiresExtension(t *testing.T) {
	fragErr(t, fragHeader+"void main(){ gl_FragColor = vec4(mul24(0.5, 0.5)); }", "requires #extension")
	frag(t, "#extension GL_EXT_mul24 : enable\n"+fragHeader+
		"void main(){ gl_FragColor = vec4(mul24(0.5, 0.5)); }")
}

func TestSemaUserFunctions(t *testing.T) {
	frag(t, fragHeader+`
float square(float x) { return x * x; }
void unpack(in vec4 v, out float a, inout float b) { a = v.x; b += v.y; }
void main() {
	float a = 0.0;
	float b = 1.0;
	unpack(vec4(0.25), a, b);
	gl_FragColor = vec4(square(a) + b);
}`)
	// Calling an undefined (or later-defined) function fails: no recursion.
	fragErr(t, fragHeader+"float f(float x){ return g(x); }\nfloat g(float x){ return f(x); }\nvoid main(){gl_FragColor=vec4(f(1.0));}", "undefined function")
	// out argument must be an l-value.
	fragErr(t, fragHeader+"void setit(out float a){ a=1.0; }\nvoid main(){ setit(2.0); gl_FragColor=vec4(0.0);}", "l-value")
	// Wrong arg type.
	fragErr(t, fragHeader+"float f(float x){ return x; }\nvoid main(){ gl_FragColor=vec4(f(1)); }", "cannot pass")
}

func TestSemaLoopRestrictions(t *testing.T) {
	// Canonical int loop.
	cs := frag(t, fragHeader+`void main() {
	float acc = 0.0;
	for (int i = 0; i < 8; i++) { acc += 1.0; }
	gl_FragColor = vec4(acc);
}`)
	if len(cs.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(cs.Loops))
	}
	for _, info := range cs.Loops {
		if info.Trip != 8 {
			t.Errorf("trip = %d, want 8", info.Trip)
		}
	}

	// The paper's float-index loop shape (assignment init).
	cs = frag(t, fragHeader+`
#define M 64.0
#define BLOCK_SIZE 16.0
void main() {
	float acc = 0.0;
	float i;
	for (i = 0.0; i < (1.0/(M/BLOCK_SIZE)); i += 1.0/M) { acc += 1.0; }
	gl_FragColor = vec4(acc);
}`)
	for _, info := range cs.Loops {
		if info.Trip != 16 {
			t.Errorf("paper loop trip = %d, want 16", info.Trip)
		}
	}

	// Non-constant bound rejected.
	fragErr(t, fragHeader+`uniform float n;
void main(){ float a=0.0; for (float i=0.0; i<n; i+=1.0){a+=1.0;} gl_FragColor=vec4(a);}`,
		"constant expression")
	// Missing condition rejected.
	fragErr(t, fragHeader+"void main(){ for (int i=0;;i++){} gl_FragColor=vec4(0.0);}", "termination condition")
	// Loop index modified in body rejected.
	fragErr(t, fragHeader+"void main(){ for (int i=0;i<4;i++){ i = 2; } gl_FragColor=vec4(0.0);}", "loop index")
	// Zero step rejected.
	fragErr(t, fragHeader+"void main(){ for (float i=0.0;i<4.0;i+=0.0){} gl_FragColor=vec4(0.0);}", "never terminates")
	// While loops rejected.
	fragErr(t, fragHeader+"void main(){ float i=0.0; while(i<1.0){i+=1.0;} gl_FragColor=vec4(0.0);}", "while loops")
}

func TestSemaLoopDecrement(t *testing.T) {
	cs := frag(t, fragHeader+`void main() {
	float acc = 0.0;
	for (int i = 10; i > 2; i--) { acc += 1.0; }
	gl_FragColor = vec4(acc);
}`)
	for _, info := range cs.Loops {
		if info.Trip != 8 {
			t.Errorf("trip = %d, want 8", info.Trip)
		}
	}
}

func TestSemaBreakContinueDiscard(t *testing.T) {
	cs := frag(t, fragHeader+`void main() {
	for (int i = 0; i < 4; i++) {
		if (i == 2) { continue; }
		if (i == 3) { break; }
	}
	if (gl_FragCoord.x < 0.0) { discard; }
	gl_FragColor = vec4(1.0);
}`)
	if !cs.UsesDiscard {
		t.Error("UsesDiscard not recorded")
	}
	fragErr(t, fragHeader+"void main(){ break; }", "outside loop")
	_, err := Frontend("void main(){ discard; gl_Position=vec4(0.0); }", CompileOptions{Stage: StageVertex})
	if err == nil {
		t.Error("discard in vertex shader not rejected")
	}
}

func TestSemaBuiltinVarsPerStage(t *testing.T) {
	fragErr(t, fragHeader+"void main(){ gl_Position = vec4(0.0); gl_FragColor=vec4(0.0);}", "not available in fragment")
	_, err := Frontend("void main(){ gl_FragColor = vec4(0.0); }", CompileOptions{Stage: StageVertex})
	if err == nil {
		t.Error("gl_FragColor in vertex shader not rejected")
	}
	fragErr(t, fragHeader+"void main(){ gl_FragCoord = vec4(0.0); gl_FragColor=vec4(0.0);}", "read-only")
}

func TestSemaVertexTextureFetchRejected(t *testing.T) {
	// Both modelled devices report 0 vertex texture units.
	_, err := Frontend(`
uniform sampler2D s;
void main(){ gl_Position = texture2D(s, vec2(0.0)); }`,
		CompileOptions{Stage: StageVertex})
	if err == nil {
		t.Fatal("vertex texture fetch accepted")
	}
	if !strings.Contains(err.Error(), "vertex") {
		t.Errorf("error: %v", err)
	}
}

func TestSemaMatrixOps(t *testing.T) {
	_, err := Frontend(`
attribute vec4 a_pos;
uniform mat4 mvp;
void main() { gl_Position = mvp * a_pos; }
`, CompileOptions{Stage: StageVertex})
	if err != nil {
		t.Fatal(err)
	}
	fragErr(t, fragHeader+"void main(){ mat2 m = mat2(1.0); vec3 v = m * vec3(1.0); gl_FragColor=vec4(v,1.0);}", "not defined")
}

func TestSemaTernary(t *testing.T) {
	frag(t, fragHeader+"void main(){ float x = gl_FragCoord.x > 0.5 ? 1.0 : 0.0; gl_FragColor = vec4(x); }")
	fragErr(t, fragHeader+"void main(){ float x = 1.0 ? 1.0 : 0.0; gl_FragColor=vec4(x);}", "must be bool")
	fragErr(t, fragHeader+"void main(){ float x = true ? 1.0 : vec2(0.0).x + vec2(0.0); gl_FragColor=vec4(x);}", "mismatched")
}

func TestSemaIndexBounds(t *testing.T) {
	fragErr(t, fragHeader+"void main(){ vec3 v=vec3(0.0); float x = v[3]; gl_FragColor=vec4(x);}", "out of range")
	fragErr(t, fragHeader+"uniform float u[4];\nvoid main(){ gl_FragColor=vec4(u[4]);}", "out of range")
	frag(t, fragHeader+`uniform float u[4];
void main(){
	float s = 0.0;
	for (int i = 0; i < 4; i++) { s += u[i]; }
	gl_FragColor = vec4(s);
}`)
}

func TestSemaSamplerRules(t *testing.T) {
	fragErr(t, fragHeader+"varying sampler2D s;\nvoid main(){gl_FragColor=vec4(0.0);}", "must be declared uniform")
	fragErr(t, fragHeader+"void main(){ sampler2D s; gl_FragColor=vec4(0.0);}", "sampler")
}

func TestSemaRedeclaration(t *testing.T) {
	fragErr(t, fragHeader+"void main(){ float x = 1.0; float x = 2.0; gl_FragColor=vec4(x);}", "redeclaration")
	// Shadowing in a nested scope is fine.
	frag(t, fragHeader+"void main(){ float x = 1.0; { float x = 2.0; gl_FragColor = vec4(x);} }")
}

func TestSemaBuiltinConstants(t *testing.T) {
	frag(t, fragHeader+`void main() {
	float lim = float(gl_MaxTextureImageUnits);
	gl_FragColor = vec4(lim / 8.0);
}`)
}
