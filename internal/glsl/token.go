// Package glsl implements a front end for the OpenGL ES Shading Language
// 1.00 (the GLSL dialect mandated by OpenGL ES 2.0): preprocessor, lexer,
// parser, type checker and constant folder. The back end that turns the
// typed AST into executable shader IR lives in internal/shader.
//
// The implemented subset covers everything GPGPU kernels in the reproduced
// paper require — and deliberately enforces the ES2-era restrictions
// (e.g. loop bounds must be constant expressions so loops can be unrolled,
// fragment shaders cannot declare attributes) because those restrictions
// are exactly what creates the implementation limits the paper runs into at
// block sizes above 16.
package glsl

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokFloatLit
	TokIntLit
	TokKeyword

	// Punctuation and operators.
	TokLParen    // (
	TokRParen    // )
	TokLBrace    // {
	TokRBrace    // }
	TokLBracket  // [
	TokRBracket  // ]
	TokComma     // ,
	TokSemicolon // ;
	TokDot       // .
	TokQuestion  // ?
	TokColon     // :

	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokAssign  // =
	TokPlusEq  // +=
	TokMinusEq // -=
	TokStarEq  // *=
	TokSlashEq // /=
	TokInc     // ++
	TokDec     // --
	TokLt      // <
	TokGt      // >
	TokLe      // <=
	TokGe      // >=
	TokEq      // ==
	TokNe      // !=
	TokAnd     // &&
	TokOr      // ||
	TokXor     // ^^
	TokNot     // !
)

var tokenKindNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokFloatLit: "float literal",
	TokIntLit: "int literal", TokKeyword: "keyword",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','",
	TokSemicolon: "';'", TokDot: "'.'", TokQuestion: "'?'", TokColon: "':'",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokAssign: "'='", TokPlusEq: "'+='", TokMinusEq: "'-='",
	TokStarEq: "'*='", TokSlashEq: "'/='", TokInc: "'++'", TokDec: "'--'",
	TokLt: "'<'", TokGt: "'>'", TokLe: "'<='", TokGe: "'>='",
	TokEq: "'=='", TokNe: "'!='", TokAnd: "'&&'", TokOr: "'||'",
	TokXor: "'^^'", TokNot: "'!'",
}

func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokKeyword, TokFloatLit, TokIntLit:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// keywords are the GLSL ES 1.00 keywords the subset recognises. Type names
// are keywords in GLSL.
var keywords = map[string]bool{
	"attribute": true, "const": true, "uniform": true, "varying": true,
	"break": true, "continue": true, "do": true, "for": true, "while": true,
	"if": true, "else": true, "in": true, "out": true, "inout": true,
	"float": true, "int": true, "bool": true, "true": true, "false": true,
	"discard": true, "return": true,
	"vec2": true, "vec3": true, "vec4": true,
	"ivec2": true, "ivec3": true, "ivec4": true,
	"bvec2": true, "bvec3": true, "bvec4": true,
	"mat2": true, "mat3": true, "mat4": true,
	"sampler2D": true, "samplerCube": true,
	"void": true,
	"lowp": true, "mediump": true, "highp": true, "precision": true,
	"invariant": true, "struct": true,
}

// reservedKeywords are keywords of GLSL ES 1.00 that the subset rejects
// explicitly (using one is a compile error, same as on real drivers).
var reservedKeywords = map[string]bool{
	"asm": true, "class": true, "union": true, "enum": true,
	"typedef": true, "template": true, "this": true, "packed": true,
	"goto": true, "switch": true, "default": true, "inline": true,
	"noinline": true, "volatile": true, "public": true, "static": true,
	"extern": true, "external": true, "interface": true, "flat": true,
	"long": true, "short": true, "double": true, "half": true,
	"fixed": true, "unsigned": true, "superp": true, "input": true,
	"output": true, "hvec2": true, "hvec3": true, "hvec4": true,
	"dvec2": true, "dvec3": true, "dvec4": true, "fvec2": true,
	"fvec3": true, "fvec4": true, "sampler1D": true, "sampler3D": true,
	"sampler1DShadow": true, "sampler2DShadow": true,
	"sampler2DRect": true, "sampler3DRect": true,
	"sampler2DRectShadow": true, "sizeof": true, "cast": true,
	"namespace": true, "using": true,
}
