package glsl

// BuiltinOp identifies the semantic operation of a builtin function so the
// shader back end can select hardware instructions (the paper's "Kernel
// Code" optimisation: builtins like dot and clamp map to single
// instructions on embedded GPU ISAs).
type BuiltinOp int

// Builtin operations.
const (
	BRadians BuiltinOp = iota
	BDegrees
	BSin
	BCos
	BTan
	BAsin
	BAcos
	BAtan
	BAtan2
	BPow
	BExp
	BLog
	BExp2
	BLog2
	BSqrt
	BInverseSqrt
	BAbs
	BSign
	BFloor
	BCeil
	BFract
	BMod
	BMin
	BMax
	BClamp
	BMix
	BStep
	BSmoothstep
	BLength
	BDistance
	BDot
	BCross
	BNormalize
	BFaceforward
	BReflect
	BRefract
	BMatrixCompMult
	BLessThan
	BLessThanEqual
	BGreaterThan
	BGreaterThanEqual
	BEqual
	BNotEqual
	BAny
	BAll
	BNot
	BTexture2D
	BTexture2DBias
	BMul24 // GL_EXT_mul24 extension: 24-bit multiply (paper §II Kernel Code)
)

// BuiltinSig is one concrete overload of a builtin function.
type BuiltinSig struct {
	Name   string
	Op     BuiltinOp
	Params []Type
	Ret    Type
	// Ext names the extension that must be enabled for this builtin, or
	// "" for core builtins.
	Ext string
	// FragmentOnly restricts the overload to fragment shaders.
	FragmentOnly bool
}

// ExtMul24 is the extension name enabling the mul24 builtin. The real
// hardware feature exists on several embedded ISAs (VideoCore IV's QPU has
// a native mul24; OpenCL exposes it as mul24); the paper proposes using it
// from GLSL because GPGPU outputs carry at most 24–32 bits of precision.
const ExtMul24 = "GL_EXT_mul24"

// KnownExtensions lists the extension names this implementation accepts.
var KnownExtensions = map[string]bool{
	ExtMul24: true,
	// EXT_discard_framebuffer is a GL-API-level extension; listing it here
	// lets shaders mention it harmlessly.
	"GL_EXT_discard_framebuffer": true,
}

var builtinTable map[string][]BuiltinSig

func init() {
	builtinTable = make(map[string][]BuiltinSig)
	gen := []Type{T(KFloat), T(KVec2), T(KVec3), T(KVec4)}
	vecs := []Type{T(KVec2), T(KVec3), T(KVec4)}
	ivecs := []Type{T(KIVec2), T(KIVec3), T(KIVec4)}
	bvecs := []Type{T(KBVec2), T(KBVec3), T(KBVec4)}

	add := func(sig BuiltinSig) {
		builtinTable[sig.Name] = append(builtinTable[sig.Name], sig)
	}
	// genType f(genType): componentwise.
	unary := func(name string, op BuiltinOp) {
		for _, g := range gen {
			add(BuiltinSig{Name: name, Op: op, Params: []Type{g}, Ret: g})
		}
	}
	// genType f(genType, genType).
	binary := func(name string, op BuiltinOp) {
		for _, g := range gen {
			add(BuiltinSig{Name: name, Op: op, Params: []Type{g, g}, Ret: g})
		}
	}
	// genType f(genType, float) in addition to the genType,genType form.
	binaryScalar := func(name string, op BuiltinOp) {
		binary(name, op)
		for _, g := range vecs {
			add(BuiltinSig{Name: name, Op: op, Params: []Type{g, T(KFloat)}, Ret: g})
		}
	}

	unary("radians", BRadians)
	unary("degrees", BDegrees)
	unary("sin", BSin)
	unary("cos", BCos)
	unary("tan", BTan)
	unary("asin", BAsin)
	unary("acos", BAcos)
	unary("atan", BAtan)
	binary("atan", BAtan2)
	binary("pow", BPow)
	unary("exp", BExp)
	unary("log", BLog)
	unary("exp2", BExp2)
	unary("log2", BLog2)
	unary("sqrt", BSqrt)
	unary("inversesqrt", BInverseSqrt)
	unary("abs", BAbs)
	unary("sign", BSign)
	unary("floor", BFloor)
	unary("ceil", BCeil)
	unary("fract", BFract)
	binaryScalar("mod", BMod)
	binaryScalar("min", BMin)
	binaryScalar("max", BMax)
	// clamp(g, g, g) and clamp(g, float, float).
	for _, g := range gen {
		add(BuiltinSig{Name: "clamp", Op: BClamp, Params: []Type{g, g, g}, Ret: g})
	}
	for _, g := range vecs {
		add(BuiltinSig{Name: "clamp", Op: BClamp, Params: []Type{g, T(KFloat), T(KFloat)}, Ret: g})
	}
	// mix(g, g, g) and mix(g, g, float).
	for _, g := range gen {
		add(BuiltinSig{Name: "mix", Op: BMix, Params: []Type{g, g, g}, Ret: g})
	}
	for _, g := range vecs {
		add(BuiltinSig{Name: "mix", Op: BMix, Params: []Type{g, g, T(KFloat)}, Ret: g})
	}
	// step(g, g) and step(float, g).
	binary("step", BStep)
	for _, g := range vecs {
		add(BuiltinSig{Name: "step", Op: BStep, Params: []Type{T(KFloat), g}, Ret: g})
	}
	// smoothstep(g, g, g) and smoothstep(float, float, g).
	for _, g := range gen {
		add(BuiltinSig{Name: "smoothstep", Op: BSmoothstep, Params: []Type{g, g, g}, Ret: g})
	}
	for _, g := range vecs {
		add(BuiltinSig{Name: "smoothstep", Op: BSmoothstep, Params: []Type{T(KFloat), T(KFloat), g}, Ret: g})
	}
	// Geometric.
	for _, g := range gen {
		add(BuiltinSig{Name: "length", Op: BLength, Params: []Type{g}, Ret: T(KFloat)})
		add(BuiltinSig{Name: "distance", Op: BDistance, Params: []Type{g, g}, Ret: T(KFloat)})
		add(BuiltinSig{Name: "dot", Op: BDot, Params: []Type{g, g}, Ret: T(KFloat)})
		add(BuiltinSig{Name: "normalize", Op: BNormalize, Params: []Type{g}, Ret: g})
		add(BuiltinSig{Name: "faceforward", Op: BFaceforward, Params: []Type{g, g, g}, Ret: g})
		add(BuiltinSig{Name: "reflect", Op: BReflect, Params: []Type{g, g}, Ret: g})
		add(BuiltinSig{Name: "refract", Op: BRefract, Params: []Type{g, g, T(KFloat)}, Ret: g})
	}
	add(BuiltinSig{Name: "cross", Op: BCross, Params: []Type{T(KVec3), T(KVec3)}, Ret: T(KVec3)})
	// Matrix.
	for _, m := range []Type{T(KMat2), T(KMat3), T(KMat4)} {
		add(BuiltinSig{Name: "matrixCompMult", Op: BMatrixCompMult, Params: []Type{m, m}, Ret: m})
	}
	// Vector relational.
	rel := func(name string, op BuiltinOp, boolToo bool) {
		for i, v := range vecs {
			add(BuiltinSig{Name: name, Op: op, Params: []Type{v, v}, Ret: bvecs[i]})
			add(BuiltinSig{Name: name, Op: op, Params: []Type{ivecs[i], ivecs[i]}, Ret: bvecs[i]})
			if boolToo {
				add(BuiltinSig{Name: name, Op: op, Params: []Type{bvecs[i], bvecs[i]}, Ret: bvecs[i]})
			}
		}
	}
	rel("lessThan", BLessThan, false)
	rel("lessThanEqual", BLessThanEqual, false)
	rel("greaterThan", BGreaterThan, false)
	rel("greaterThanEqual", BGreaterThanEqual, false)
	rel("equal", BEqual, true)
	rel("notEqual", BNotEqual, true)
	for _, b := range bvecs {
		add(BuiltinSig{Name: "any", Op: BAny, Params: []Type{b}, Ret: T(KBool)})
		add(BuiltinSig{Name: "all", Op: BAll, Params: []Type{b}, Ret: T(KBool)})
		add(BuiltinSig{Name: "not", Op: BNot, Params: []Type{b}, Ret: b})
	}
	// Texture lookup. Vertex texture fetch is optional in GLES2 and both
	// modelled devices report gl_MaxVertexTextureImageUnits = 0, so all
	// texture2D overloads are fragment-only here.
	add(BuiltinSig{Name: "texture2D", Op: BTexture2D, Params: []Type{T(KSampler2D), T(KVec2)}, Ret: T(KVec4), FragmentOnly: true})
	add(BuiltinSig{Name: "texture2D", Op: BTexture2DBias, Params: []Type{T(KSampler2D), T(KVec2), T(KFloat)}, Ret: T(KVec4), FragmentOnly: true})
	// Extension builtins.
	add(BuiltinSig{Name: "mul24", Op: BMul24, Params: []Type{T(KFloat), T(KFloat)}, Ret: T(KFloat), Ext: ExtMul24})
}

// LookupBuiltin returns the overloads registered under name.
func LookupBuiltin(name string) []BuiltinSig { return builtinTable[name] }

// ShaderStage distinguishes vertex from fragment compilation.
type ShaderStage int

// Shader stages.
const (
	StageVertex ShaderStage = iota
	StageFragment
)

func (s ShaderStage) String() string {
	if s == StageVertex {
		return "vertex"
	}
	return "fragment"
}

// builtinVar describes a gl_* variable available to a stage.
type builtinVar struct {
	typ      Type
	writable bool
	stages   map[ShaderStage]bool
}

var builtinVars = map[string]builtinVar{
	"gl_Position":    {typ: T(KVec4), writable: true, stages: map[ShaderStage]bool{StageVertex: true}},
	"gl_PointSize":   {typ: T(KFloat), writable: true, stages: map[ShaderStage]bool{StageVertex: true}},
	"gl_FragColor":   {typ: T(KVec4), writable: true, stages: map[ShaderStage]bool{StageFragment: true}},
	"gl_FragCoord":   {typ: T(KVec4), writable: false, stages: map[ShaderStage]bool{StageFragment: true}},
	"gl_FrontFacing": {typ: T(KBool), writable: false, stages: map[ShaderStage]bool{StageFragment: true}},
	"gl_PointCoord":  {typ: T(KVec2), writable: false, stages: map[ShaderStage]bool{StageFragment: true}},
}

// builtinConsts are the gl_Max* implementation constants exposed to
// shaders. Values follow the minima of the GLES2 spec; device profiles can
// be stricter at link time but the shader-visible constants use these.
var builtinConsts = map[string]int{
	"gl_MaxVertexAttribs":             8,
	"gl_MaxVertexUniformVectors":      128,
	"gl_MaxVaryingVectors":            8,
	"gl_MaxVertexTextureImageUnits":   0,
	"gl_MaxCombinedTextureImageUnits": 8,
	"gl_MaxTextureImageUnits":         8,
	"gl_MaxFragmentUniformVectors":    16,
	"gl_MaxDrawBuffers":               1,
}
