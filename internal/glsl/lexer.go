package glsl

import (
	"fmt"
	"strings"
)

// Error is a compile diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lexer turns GLSL source text into tokens. Comments are stripped; line
// numbering is preserved across them.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// skipSpaceAndComments consumes whitespace and // and /* */ comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if reservedKeywords[text] {
			return Token{}, errf(pos, "use of reserved keyword %q", text)
		}
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.lexNumber(pos)
	}
	l.advance()
	two := func(second byte, withKind, withoutKind TokenKind) Token {
		if l.peek() == second {
			l.advance()
			return Token{Kind: withKind, Pos: pos}
		}
		return Token{Kind: withoutKind, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemicolon, Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Pos: pos}, nil
	case '?':
		return Token{Kind: TokQuestion, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: TokInc, Pos: pos}, nil
		}
		return two('=', TokPlusEq, TokPlus), nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: TokDec, Pos: pos}, nil
		}
		return two('=', TokMinusEq, TokMinus), nil
	case '*':
		return two('=', TokStarEq, TokStar), nil
	case '/':
		return two('=', TokSlashEq, TokSlash), nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '<':
		return two('=', TokLe, TokLt), nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: TokAnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "bitwise '&' is not supported in GLSL ES 1.00")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: TokOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "bitwise '|' is not supported in GLSL ES 1.00")
	case '^':
		if l.peek() == '^' {
			l.advance()
			return Token{Kind: TokXor, Pos: pos}, nil
		}
		return Token{}, errf(pos, "bitwise '^' is not supported in GLSL ES 1.00")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// lexNumber scans integer and float literals, including exponent forms.
// GLSL ES 1.00 also allows octal/hex integer literals.
func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		n := 0
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
			n++
		}
		if n == 0 {
			return Token{}, errf(pos, "malformed hex literal")
		}
		return Token{Kind: TokIntLit, Text: l.src[start:l.off], Pos: pos}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		isExp := false
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
			isExp = true
		}
		if !isExp {
			// Not an exponent after all (e.g. "1e" followed by ident);
			// GLSL treats this as malformed.
			l.off = save
			return Token{}, errf(pos, "malformed exponent in numeric literal")
		}
		isFloat = true
	}
	text := l.src[start:l.off]
	if isAlpha(l.peek()) {
		return Token{}, errf(pos, "malformed numeric literal %q…", text)
	}
	if isFloat {
		return Token{Kind: TokFloatLit, Text: text, Pos: pos}, nil
	}
	return Token{Kind: TokIntLit, Text: text, Pos: pos}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// LexAll tokenises src completely (excluding the trailing EOF token).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

// FormatTokens renders tokens for debugging.
func FormatTokens(toks []Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}
