package glsl

// The AST node set. Every expression node carries a T field filled in by
// the type checker (sema.go) and a Const field holding its folded constant
// value when the expression is a constant expression.

// Node is implemented by all AST nodes.
type Node interface {
	Pos() Pos
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	// Type returns the checked type (valid after sema).
	Type() Type
	// ConstVal returns the folded constant value, or nil.
	ConstVal() *ConstValue
}

// ConstValue is a folded compile-time value. Components are stored as
// float64 for float/vec/mat values; for int/bool values the float64 holds
// the exact integer (GLSL ES integer ranges fit losslessly).
type ConstValue struct {
	T    Type
	Vals []float64 // len == T.Components() (or ArrayLen*components)
}

// Bool returns the value as a bool (first component non-zero).
func (c *ConstValue) Bool() bool { return len(c.Vals) > 0 && c.Vals[0] != 0 }

// Float returns the first component.
func (c *ConstValue) Float() float64 {
	if len(c.Vals) == 0 {
		return 0
	}
	return c.Vals[0]
}

// Int returns the first component truncated toward zero.
func (c *ConstValue) Int() int { return int(c.Float()) }

// exprBase embeds the checked type and constant value.
type exprBase struct {
	P Pos
	T Type
	C *ConstValue
}

func (e *exprBase) Pos() Pos              { return e.P }
func (e *exprBase) Type() Type            { return e.T }
func (e *exprBase) ConstVal() *ConstValue { return e.C }

// Ident is a reference to a named variable (or, before sema resolves calls,
// a function name inside a Call).
type Ident struct {
	exprBase
	Name string
	// Sym is resolved by sema.
	Sym *Symbol
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Value float64
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Value bool
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpLT
	OpGT
	OpLE
	OpGE
	OpEQ
	OpNE
	OpLAnd
	OpLOr
	OpLXor
)

var binOpNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLT: "<", OpGT: ">", OpLE: "<=", OpGE: ">=",
	OpEQ: "==", OpNE: "!=", OpLAnd: "&&", OpLOr: "||", OpLXor: "^^",
}

func (op BinaryOp) String() string { return binOpNames[op] }

// Binary is a binary expression.
type Binary struct {
	exprBase
	Op   BinaryOp
	L, R Expr
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota
	OpNot
	OpPreInc
	OpPreDec
	OpPostInc
	OpPostDec
)

// Unary is a unary expression. For the inc/dec forms X must be an l-value.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// AssignOp enumerates assignment operators.
type AssignOp int

// Assignment operators.
const (
	AsgEq AssignOp = iota
	AsgAdd
	AsgSub
	AsgMul
	AsgDiv
)

func (op AssignOp) String() string {
	switch op {
	case AsgAdd:
		return "+="
	case AsgSub:
		return "-="
	case AsgMul:
		return "*="
	case AsgDiv:
		return "/="
	}
	return "="
}

// Assign is an assignment expression (GLSL assignments are expressions).
type Assign struct {
	exprBase
	Op  AssignOp
	LHS Expr
	RHS Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	exprBase
	Cond, Then, Else Expr
}

// Call is a function call or a type constructor. After sema either Builtin
// or Func is set for function calls, or Ctor is true for constructors.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Resolution results:
	Ctor     bool // type constructor such as vec4(...)
	CtorType Type
	Builtin  *BuiltinSig // resolved builtin overload
	Func     *FuncDecl   // resolved user function
}

// Index is x[i] on vectors, matrices and arrays.
type Index struct {
	exprBase
	X   Expr
	Idx Expr
}

// FieldSelect is x.swizzle (e.g. v.xyz, v.rgba, v.s).
type FieldSelect struct {
	exprBase
	X     Expr
	Field string
	// Comps is the resolved component index list (filled by sema).
	Comps []int
}

// Statements.

// Stmt is implemented by statement nodes.
type Stmt interface{ Node }

// DeclStmt declares one local variable (the parser splits comma lists into
// several DeclStmts for simplicity).
type DeclStmt struct {
	P        Pos
	Name     string
	DeclType Type
	Prec     Precision
	IsConst  bool
	Init     Expr // may be nil
	Sym      *Symbol
}

// Pos implements Node.
func (d *DeclStmt) Pos() Pos { return d.P }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	P Pos
	X Expr
}

// Pos implements Node.
func (s *ExprStmt) Pos() Pos { return s.P }

// Block is { ... }.
type Block struct {
	P     Pos
	Stmts []Stmt
}

// Pos implements Node.
func (b *Block) Pos() Pos { return b.P }

// IfStmt is if/else.
type IfStmt struct {
	P    Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// Pos implements Node.
func (s *IfStmt) Pos() Pos { return s.P }

// ForStmt is the ES2-restricted for loop.
type ForStmt struct {
	P    Pos
	Init Stmt // DeclStmt or ExprStmt, may be nil
	Cond Expr // may be nil (rejected by sema: ES2 requires a condition)
	Post Expr // may be nil
	Body Stmt
}

// Pos implements Node.
func (s *ForStmt) Pos() Pos { return s.P }

// WhileStmt is while(cond) body. GLSL ES 1.00 makes while-loop support
// optional; this implementation parses it and rejects it in sema, the same
// observable behaviour as the embedded compilers the paper targets.
type WhileStmt struct {
	P    Pos
	Cond Expr
	Body Stmt
}

// Pos implements Node.
func (s *WhileStmt) Pos() Pos { return s.P }

// ReturnStmt returns from a function.
type ReturnStmt struct {
	P Pos
	X Expr // may be nil
}

// Pos implements Node.
func (s *ReturnStmt) Pos() Pos { return s.P }

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ P Pos }

// Pos implements Node.
func (s *BreakStmt) Pos() Pos { return s.P }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ P Pos }

// Pos implements Node.
func (s *ContinueStmt) Pos() Pos { return s.P }

// DiscardStmt discards the fragment (fragment shaders only).
type DiscardStmt struct{ P Pos }

// Pos implements Node.
func (s *DiscardStmt) Pos() Pos { return s.P }

// Top-level declarations.

// GlobalDecl is a module-scope variable declaration.
type GlobalDecl struct {
	P        Pos
	Name     string
	DeclType Type
	Prec     Precision
	Storage  StorageQualifier
	Init     Expr // only for const globals
	Sym      *Symbol
}

// Pos implements Node.
func (g *GlobalDecl) Pos() Pos { return g.P }

// Param is a function parameter.
type Param struct {
	P         Pos
	Name      string
	DeclType  Type
	Prec      Precision
	Qualifier ParamQualifier
	Sym       *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	P      Pos
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
}

// Pos implements Node.
func (f *FuncDecl) Pos() Pos { return f.P }

// PrecisionDecl is a default-precision statement
// ("precision mediump float;").
type PrecisionDecl struct {
	P    Pos
	Prec Precision
	For  BasicKind // KFloat, KInt or a sampler kind
}

// Pos implements Node.
func (p *PrecisionDecl) Pos() Pos { return p.P }

// Program is a parsed translation unit.
type Program struct {
	Decls []Node // GlobalDecl, FuncDecl, PrecisionDecl in source order
}

// SymbolKind classifies resolved symbols.
type SymbolKind int

// Symbol kinds.
const (
	SymLocal SymbolKind = iota
	SymParam
	SymGlobal
	SymUniform
	SymAttribute
	SymVarying
	SymBuiltinVar
	SymConst
)

// Symbol is a resolved named entity.
type Symbol struct {
	Name string
	Kind SymbolKind
	Type Type
	Prec Precision
	// Const value for SymConst symbols.
	Const *ConstValue
	// Register assignment, filled by the shader back end.
	Reg int
}
