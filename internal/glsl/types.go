package glsl

import "fmt"

// BasicKind enumerates the GLSL ES 1.00 basic types this front end supports.
type BasicKind int

// Basic type kinds.
const (
	KVoid BasicKind = iota
	KBool
	KInt
	KFloat
	KVec2
	KVec3
	KVec4
	KIVec2
	KIVec3
	KIVec4
	KBVec2
	KBVec3
	KBVec4
	KMat2
	KMat3
	KMat4
	KSampler2D
	KSamplerCube
)

var kindNames = map[BasicKind]string{
	KVoid: "void", KBool: "bool", KInt: "int", KFloat: "float",
	KVec2: "vec2", KVec3: "vec3", KVec4: "vec4",
	KIVec2: "ivec2", KIVec3: "ivec3", KIVec4: "ivec4",
	KBVec2: "bvec2", KBVec3: "bvec3", KBVec4: "bvec4",
	KMat2: "mat2", KMat3: "mat3", KMat4: "mat4",
	KSampler2D: "sampler2D", KSamplerCube: "samplerCube",
}

func (k BasicKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("BasicKind(%d)", int(k))
}

// typeByName maps GLSL type keywords to kinds.
var typeByName = map[string]BasicKind{
	"void": KVoid, "bool": KBool, "int": KInt, "float": KFloat,
	"vec2": KVec2, "vec3": KVec3, "vec4": KVec4,
	"ivec2": KIVec2, "ivec3": KIVec3, "ivec4": KIVec4,
	"bvec2": KBVec2, "bvec3": KBVec3, "bvec4": KBVec4,
	"mat2": KMat2, "mat3": KMat3, "mat4": KMat4,
	"sampler2D": KSampler2D, "samplerCube": KSamplerCube,
}

// Type is a GLSL type: a basic type, optionally an array of it
// (ArrayLen > 0). GLSL ES 1.00 has no nested arrays and no array-valued
// expressions, so this flat representation is complete for the subset.
type Type struct {
	Kind     BasicKind
	ArrayLen int // 0: not an array
}

// T is shorthand for a non-array type of the given kind.
func T(k BasicKind) Type { return Type{Kind: k} }

func (t Type) String() string {
	if t.ArrayLen > 0 {
		return fmt.Sprintf("%s[%d]", t.Kind, t.ArrayLen)
	}
	return t.Kind.String()
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t.ArrayLen > 0 }

// IsScalar reports whether t is bool, int or float.
func (t Type) IsScalar() bool {
	return !t.IsArray() && (t.Kind == KBool || t.Kind == KInt || t.Kind == KFloat)
}

// IsVector reports whether t is a vector type of any component type.
func (t Type) IsVector() bool {
	if t.IsArray() {
		return false
	}
	switch t.Kind {
	case KVec2, KVec3, KVec4, KIVec2, KIVec3, KIVec4, KBVec2, KBVec3, KBVec4:
		return true
	}
	return false
}

// IsMatrix reports whether t is mat2, mat3 or mat4.
func (t Type) IsMatrix() bool {
	if t.IsArray() {
		return false
	}
	return t.Kind == KMat2 || t.Kind == KMat3 || t.Kind == KMat4
}

// IsSampler reports whether t is a sampler type.
func (t Type) IsSampler() bool {
	return !t.IsArray() && (t.Kind == KSampler2D || t.Kind == KSamplerCube)
}

// IsFloatBased reports whether t's components are floats (float, vecN, matN).
func (t Type) IsFloatBased() bool {
	if t.IsArray() {
		return false
	}
	switch t.Kind {
	case KFloat, KVec2, KVec3, KVec4, KMat2, KMat3, KMat4:
		return true
	}
	return false
}

// Components returns the number of scalar components in one element of t
// (e.g. vec3 → 3, mat2 → 4, float → 1). Samplers and void return 0.
func (t Type) Components() int {
	switch t.Kind {
	case KBool, KInt, KFloat:
		return 1
	case KVec2, KIVec2, KBVec2:
		return 2
	case KVec3, KIVec3, KBVec3:
		return 3
	case KVec4, KIVec4, KBVec4:
		return 4
	case KMat2:
		return 4
	case KMat3:
		return 9
	case KMat4:
		return 16
	}
	return 0
}

// MatrixCols returns N for matN, 0 otherwise.
func (t Type) MatrixCols() int {
	switch t.Kind {
	case KMat2:
		return 2
	case KMat3:
		return 3
	case KMat4:
		return 4
	}
	return 0
}

// ComponentKind returns the scalar kind of t's components.
func (t Type) ComponentKind() BasicKind {
	switch t.Kind {
	case KBool, KBVec2, KBVec3, KBVec4:
		return KBool
	case KInt, KIVec2, KIVec3, KIVec4:
		return KInt
	case KFloat, KVec2, KVec3, KVec4, KMat2, KMat3, KMat4:
		return KFloat
	}
	return KVoid
}

// VectorOf returns the vector type with the given component kind and size
// (size 1 returns the scalar kind itself).
func VectorOf(comp BasicKind, size int) (Type, bool) {
	if size == 1 {
		switch comp {
		case KBool, KInt, KFloat:
			return T(comp), true
		}
		return Type{}, false
	}
	tab := map[BasicKind][3]BasicKind{
		KFloat: {KVec2, KVec3, KVec4},
		KInt:   {KIVec2, KIVec3, KIVec4},
		KBool:  {KBVec2, KBVec3, KBVec4},
	}
	kinds, ok := tab[comp]
	if !ok || size < 2 || size > 4 {
		return Type{}, false
	}
	return T(kinds[size-2]), true
}

// Precision is a GLSL precision qualifier. The front end records it; the
// back end uses it to pick the arithmetic cost class and, for mediump/lowp,
// to model reduced-precision effects.
type Precision int

// Precision qualifiers. PrecNone means "not specified, inherit default".
const (
	PrecNone Precision = iota
	PrecLow
	PrecMedium
	PrecHigh
)

func (p Precision) String() string {
	switch p {
	case PrecLow:
		return "lowp"
	case PrecMedium:
		return "mediump"
	case PrecHigh:
		return "highp"
	}
	return ""
}

// precisionByName maps the precision keywords.
var precisionByName = map[string]Precision{
	"lowp": PrecLow, "mediump": PrecMedium, "highp": PrecHigh,
}

// StorageQualifier is the storage class of a global declaration.
type StorageQualifier int

// Storage qualifiers.
const (
	StorNone StorageQualifier = iota
	StorConst
	StorAttribute
	StorUniform
	StorVarying
)

func (s StorageQualifier) String() string {
	switch s {
	case StorConst:
		return "const"
	case StorAttribute:
		return "attribute"
	case StorUniform:
		return "uniform"
	case StorVarying:
		return "varying"
	}
	return ""
}

// ParamQualifier is the parameter direction of a function parameter.
type ParamQualifier int

// Parameter qualifiers.
const (
	ParamIn ParamQualifier = iota
	ParamOut
	ParamInOut
)

func (p ParamQualifier) String() string {
	switch p {
	case ParamOut:
		return "out"
	case ParamInOut:
		return "inout"
	}
	return "in"
}
