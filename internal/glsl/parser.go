package glsl

import "strconv"

// Parser builds an AST from a preprocessed token stream.
type Parser struct {
	toks []Token
	i    int
}

// NewParser returns a parser over toks (as produced by Preprocessor.Process).
func NewParser(toks []Token) *Parser { return &Parser{toks: toks} }

// Parse parses a full translation unit.
func (p *Parser) Parse() (*Program, error) {
	prog := &Program{}
	for !p.atEOF() {
		d, err := p.parseTopLevel()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d...)
	}
	return prog, nil
}

func (p *Parser) atEOF() bool { return p.i >= len(p.toks) }

func (p *Parser) peek() Token {
	if p.atEOF() {
		last := Pos{Line: 1, Col: 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: TokEOF, Pos: last}
	}
	return p.toks[p.i]
}

func (p *Parser) peekN(n int) Token {
	if p.i+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.i+n]
}

func (p *Parser) next() Token {
	t := p.peek()
	if !p.atEOF() {
		p.i++
	}
	return t
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, got %s", k, t)
	}
	return p.next(), nil
}

func (p *Parser) isKeyword(s string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *Parser) acceptKeyword(s string) bool {
	if p.isKeyword(s) {
		p.next()
		return true
	}
	return false
}

// parseTypeName consumes a type keyword.
func (p *Parser) parseTypeName() (Type, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		if k, ok := typeByName[t.Text]; ok {
			p.next()
			return T(k), nil
		}
	}
	return Type{}, errf(t.Pos, "expected type name, got %s", t)
}

func (p *Parser) parsePrecisionOpt() Precision {
	t := p.peek()
	if t.Kind == TokKeyword {
		if pr, ok := precisionByName[t.Text]; ok {
			p.next()
			return pr
		}
	}
	return PrecNone
}

// parseTopLevel parses one top-level declaration, which may expand to
// several nodes (comma-separated globals).
func (p *Parser) parseTopLevel() ([]Node, error) {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == "precision" {
		p.next()
		prec := p.parsePrecisionOpt()
		if prec == PrecNone {
			return nil, errf(p.peek().Pos, "expected precision qualifier")
		}
		ty, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		switch ty.Kind {
		case KFloat, KInt, KSampler2D, KSamplerCube:
		default:
			return nil, errf(t.Pos, "default precision cannot be set for %s", ty)
		}
		if _, err := p.expect(TokSemicolon); err != nil {
			return nil, err
		}
		return []Node{&PrecisionDecl{P: t.Pos, Prec: prec, For: ty.Kind}}, nil
	}
	if t.Kind == TokKeyword && t.Text == "struct" {
		return nil, errf(t.Pos, "struct declarations are not supported by this implementation")
	}
	if t.Kind == TokKeyword && t.Text == "invariant" {
		// "invariant varying ..." — accept and ignore the invariant flag.
		p.next()
		t = p.peek()
	}

	storage := StorNone
	switch {
	case p.acceptKeyword("const"):
		storage = StorConst
	case p.acceptKeyword("attribute"):
		storage = StorAttribute
	case p.acceptKeyword("uniform"):
		storage = StorUniform
	case p.acceptKeyword("varying"):
		storage = StorVarying
	}
	prec := p.parsePrecisionOpt()
	ty, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}

	// Function definition: type name '(' ...
	if storage == StorNone && p.peek().Kind == TokIdent && p.peekN(1).Kind == TokLParen {
		fd, err := p.parseFuncDecl(ty, t.Pos)
		if err != nil {
			return nil, err
		}
		return []Node{fd}, nil
	}
	if ty.Kind == KVoid {
		return nil, errf(t.Pos, "variables cannot have type void")
	}

	// Global variable declaration list.
	var out []Node
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		gty := ty
		if p.peek().Kind == TokLBracket {
			p.next()
			n, err := p.parseArraySize()
			if err != nil {
				return nil, err
			}
			gty.ArrayLen = n
		}
		g := &GlobalDecl{P: nameTok.Pos, Name: nameTok.Text, DeclType: gty, Prec: prec, Storage: storage}
		if p.peek().Kind == TokAssign {
			p.next()
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			g.Init = e
		}
		out = append(out, g)
		if p.peek().Kind == TokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseArraySize() (int, error) {
	t, err := p.expect(TokIntLit)
	if err != nil {
		return 0, errf(p.peek().Pos, "array size must be an integer constant")
	}
	n, err2 := strconv.Atoi(t.Text)
	if err2 != nil || n <= 0 {
		return 0, errf(t.Pos, "invalid array size %q", t.Text)
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return 0, err
	}
	return n, nil
}

func (p *Parser) parseFuncDecl(ret Type, pos Pos) (*FuncDecl, error) {
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fd := &FuncDecl{P: pos, Name: nameTok.Text, Ret: ret}
	if p.peek().Kind != TokRParen {
		// void parameter list: foo(void)
		if p.isKeyword("void") && p.peekN(1).Kind == TokRParen {
			p.next()
		} else {
			for {
				prm, err := p.parseParam()
				if err != nil {
					return nil, err
				}
				fd.Params = append(fd.Params, prm)
				if p.peek().Kind != TokComma {
					break
				}
				p.next()
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSemicolon {
		return nil, errf(p.peek().Pos, "function prototypes without bodies are not supported; define %s before use", fd.Name)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *Parser) parseParam() (Param, error) {
	prm := Param{P: p.peek().Pos, Qualifier: ParamIn}
	switch {
	case p.acceptKeyword("in"):
		prm.Qualifier = ParamIn
	case p.acceptKeyword("out"):
		prm.Qualifier = ParamOut
	case p.acceptKeyword("inout"):
		prm.Qualifier = ParamInOut
	}
	prm.Prec = p.parsePrecisionOpt()
	ty, err := p.parseTypeName()
	if err != nil {
		return prm, err
	}
	if ty.Kind == KVoid {
		return prm, errf(prm.P, "parameter cannot have type void")
	}
	prm.DeclType = ty
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return prm, err
	}
	prm.Name = nameTok.Text
	if p.peek().Kind == TokLBracket {
		p.next()
		n, err := p.parseArraySize()
		if err != nil {
			return prm, err
		}
		prm.DeclType.ArrayLen = n
	}
	return prm, nil
}

// Statements.

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{P: lb.Pos}
	for p.peek().Kind != TokRBrace {
		if p.atEOF() {
			return nil, errf(lb.Pos, "unterminated block")
		}
		stmts, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, stmts...)
	}
	p.next()
	return b, nil
}

// parseStmt returns one or more statements (declaration lists split).
func (p *Parser) parseStmt() ([]Stmt, error) {
	t := p.peek()
	switch {
	case t.Kind == TokLBrace:
		b, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return []Stmt{b}, nil
	case t.Kind == TokSemicolon:
		p.next()
		return nil, nil
	case t.Kind == TokKeyword:
		switch t.Text {
		case "if":
			s, err := p.parseIf()
			return wrap(s, err)
		case "for":
			s, err := p.parseFor()
			return wrap(s, err)
		case "while":
			s, err := p.parseWhile()
			return wrap(s, err)
		case "do":
			return nil, errf(t.Pos, "do-while loops are not supported by GLSL ES 1.00 implementations")
		case "return":
			p.next()
			s := &ReturnStmt{P: t.Pos}
			if p.peek().Kind != TokSemicolon {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				s.X = e
			}
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		case "break":
			p.next()
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
			return []Stmt{&BreakStmt{P: t.Pos}}, nil
		case "continue":
			p.next()
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
			return []Stmt{&ContinueStmt{P: t.Pos}}, nil
		case "discard":
			p.next()
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
			return []Stmt{&DiscardStmt{P: t.Pos}}, nil
		}
		if p.startsDecl() {
			return p.parseDeclStmt()
		}
	}
	// Expression statement.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return []Stmt{&ExprStmt{P: t.Pos, X: e}}, nil
}

func wrap(s Stmt, err error) ([]Stmt, error) {
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// startsDecl reports whether the upcoming tokens begin a declaration:
// [const] [precision] typename ident.
func (p *Parser) startsDecl() bool {
	j := 0
	t := p.peekN(j)
	if t.Kind == TokKeyword && t.Text == "const" {
		j++
		t = p.peekN(j)
	}
	if t.Kind == TokKeyword {
		if _, ok := precisionByName[t.Text]; ok {
			j++
			t = p.peekN(j)
		}
	}
	if t.Kind != TokKeyword {
		return false
	}
	if _, ok := typeByName[t.Text]; !ok {
		return false
	}
	// A type keyword followed by '(' is a constructor expression, not a
	// declaration.
	return p.peekN(j+1).Kind == TokIdent
}

func (p *Parser) parseDeclStmt() ([]Stmt, error) {
	isConst := p.acceptKeyword("const")
	prec := p.parsePrecisionOpt()
	ty, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if ty.Kind == KVoid {
		return nil, errf(p.peek().Pos, "variables cannot have type void")
	}
	var out []Stmt
	for {
		nameTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		dty := ty
		if p.peek().Kind == TokLBracket {
			p.next()
			n, err := p.parseArraySize()
			if err != nil {
				return nil, err
			}
			dty.ArrayLen = n
		}
		d := &DeclStmt{P: nameTok.Pos, Name: nameTok.Text, DeclType: dty, Prec: prec, IsConst: isConst}
		if p.peek().Kind == TokAssign {
			p.next()
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		out = append(out, d)
		if p.peek().Kind == TokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	thenStmts, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{P: t.Pos, Cond: cond, Then: stmtOrBlock(t.Pos, thenStmts)}
	if p.isKeyword("else") {
		p.next()
		elseStmts, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = stmtOrBlock(t.Pos, elseStmts)
	}
	return s, nil
}

func stmtOrBlock(pos Pos, stmts []Stmt) Stmt {
	if len(stmts) == 1 {
		return stmts[0]
	}
	return &Block{P: pos, Stmts: stmts}
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{P: t.Pos}
	if p.peek().Kind != TokSemicolon {
		if p.startsDecl() {
			decls, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			if len(decls) != 1 {
				return nil, errf(t.Pos, "for-loop init must declare exactly one variable")
			}
			s.Init = decls[0]
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemicolon); err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{P: t.Pos, X: e}
		}
	} else {
		p.next()
	}
	if p.peek().Kind != TokSemicolon {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = e
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	if p.peek().Kind != TokRParen {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = e
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = stmtOrBlock(t.Pos, body)
	return s, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{P: t.Pos, Cond: cond, Body: stmtOrBlock(t.Pos, body)}, nil
}

// Expressions. Precedence climbing; GLSL ES 1.00 precedence for the
// supported operators.

var binPrec = map[TokenKind]struct {
	prec int
	op   BinaryOp
}{
	TokOr:    {1, OpLOr},
	TokXor:   {2, OpLXor},
	TokAnd:   {3, OpLAnd},
	TokEq:    {4, OpEQ},
	TokNe:    {4, OpNE},
	TokLt:    {5, OpLT},
	TokGt:    {5, OpGT},
	TokLe:    {5, OpLE},
	TokGe:    {5, OpGE},
	TokPlus:  {6, OpAdd},
	TokMinus: {6, OpSub},
	TokStar:  {7, OpMul},
	TokSlash: {7, OpDiv},
}

// parseExpr parses a full expression including the comma operator? GLSL has
// the sequence operator but shaders in this subset do not need it; we parse
// assignment level here.
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	var op AssignOp
	switch p.peek().Kind {
	case TokAssign:
		op = AsgEq
	case TokPlusEq:
		op = AsgAdd
	case TokMinusEq:
		op = AsgSub
	case TokStarEq:
		op = AsgMul
	case TokSlashEq:
		op = AsgDiv
	default:
		return lhs, nil
	}
	t := p.next()
	rhs, err := p.parseAssignExpr() // right-associative
	if err != nil {
		return nil, err
	}
	return &Assign{exprBase: exprBase{P: t.Pos}, Op: op, LHS: lhs, RHS: rhs}, nil
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokQuestion {
		return cond, nil
	}
	t := p.next()
	thenE, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	elseE, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	return &Ternary{exprBase: exprBase{P: t.Pos}, Cond: cond, Then: thenE, Else: elseE}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		info, ok := binPrec[p.peek().Kind]
		if !ok || info.prec < minPrec {
			return lhs, nil
		}
		t := p.next()
		rhs, err := p.parseBinary(info.prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{P: t.Pos}, Op: info.op, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: OpNeg, X: x}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	case TokNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: OpNot, X: x}, nil
	case TokInc, TokDec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := OpPreInc
		if t.Kind == TokDec {
			op = OpPreDec
		}
		return &Unary{exprBase: exprBase{P: t.Pos}, Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case TokDot:
			p.next()
			f, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			x = &FieldSelect{exprBase: exprBase{P: f.Pos}, X: x, Field: f.Text}
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{P: t.Pos}, X: x, Idx: idx}
		case TokInc, TokDec:
			p.next()
			op := OpPostInc
			if t.Kind == TokDec {
				op = OpPostDec
			}
			x = &Unary{exprBase: exprBase{P: t.Pos}, Op: op, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokFloatLit:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{exprBase: exprBase{P: t.Pos}, Value: v}, nil
	case TokIntLit:
		p.next()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad int literal %q", t.Text)
		}
		return &IntLit{exprBase: exprBase{P: t.Pos}, Value: v}, nil
	case TokKeyword:
		switch t.Text {
		case "true", "false":
			p.next()
			return &BoolLit{exprBase: exprBase{P: t.Pos}, Value: t.Text == "true"}, nil
		}
		// Constructor: typename '(' args ')'
		if _, ok := typeByName[t.Text]; ok {
			p.next()
			if p.peek().Kind != TokLParen {
				return nil, errf(t.Pos, "expected '(' after type name %s", t.Text)
			}
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{exprBase: exprBase{P: t.Pos}, Name: t.Text, Args: args}, nil
		}
		return nil, errf(t.Pos, "unexpected keyword %q in expression", t.Text)
	case TokIdent:
		p.next()
		if p.peek().Kind == TokLParen {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{exprBase: exprBase{P: t.Pos}, Name: t.Text, Args: args}, nil
		}
		return &Ident{exprBase: exprBase{P: t.Pos}, Name: t.Text}, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t)
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	if p.peek().Kind != TokRParen {
		if p.isKeyword("void") && p.peekN(1).Kind == TokRParen {
			p.next()
		} else {
			for {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().Kind != TokComma {
					break
				}
				p.next()
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return args, nil
}
