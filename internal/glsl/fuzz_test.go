package glsl

import "testing"

// Go-native fuzz targets for the GLSL front end. The invariant in every
// case is "no panic, no hang": arbitrary byte soup must come back as a
// positioned *Error or a well-formed result, never a crash. Committed
// corpus seeds live under testdata/fuzz/<FuzzName>/ so CI's fuzz smoke
// (-fuzztime a few seconds) starts from real shader shapes; go test's
// normal run replays seeds and corpus as plain regression tests.

var fuzzSeeds = []string{
	"",
	"precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }\n",
	"precision mediump float;\nuniform sampler2D t;\nvarying vec2 v;\nvoid main() { gl_FragColor = texture2D(t, v); }\n",
	"#define A(x) ((x)*(x))\nprecision mediump float;\nvoid main() { gl_FragColor = vec4(A(0.5)); }\n",
	"#ifdef NOPE\n#error unreachable\n#else\nprecision mediump float;\nvoid main() {}\n#endif\n",
	"precision mediump float;\nvoid main() { for (int i = 0; i < 4; i++) { if (i > 2) discard; } }\n",
	"attribute vec2 a_pos;\nvoid main() { gl_Position = vec4(a_pos, 0.0, 1.0); }\n",
	"#version 100\nprecision mediump float;\nvoid main() { float x = dot(vec2(1.0), vec2(2.0)); gl_FragColor = vec4(x); }\n",
	"precision mediump float;\nvoid main() { float x = 1.0 /* unterminated\n",
	"#define X X\nprecision mediump float;\nvoid main() { float y = float(X); }\n",
	"\x00\xff\xfe weird bytes \x80",
}

func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := LexAll(src)
		if err != nil {
			return
		}
		// Every lexed token carries a valid source position.
		for _, tok := range toks {
			if tok.Pos.Line <= 0 || tok.Pos.Col <= 0 {
				t.Fatalf("token %v has no source position", tok)
			}
		}
	})
}

func FuzzPreprocessor(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pp := NewPreprocessor()
		res, err := pp.Process(src)
		if err != nil || res == nil {
			return
		}
		for _, tok := range res.Tokens {
			if tok.Pos.Line <= 0 {
				t.Fatalf("preprocessed token %v has no source line", tok)
			}
		}
	})
}

func FuzzFrontend(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, stage := range []ShaderStage{StageFragment, StageVertex} {
			cs, err := Frontend(src, CompileOptions{Stage: stage})
			if err == nil && cs == nil {
				t.Fatalf("Frontend returned nil result without error")
			}
		}
	})
}
