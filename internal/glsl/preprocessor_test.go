package glsl

import (
	"strings"
	"testing"
)

func ppProcess(t *testing.T, src string, defines map[string]string) *PPResult {
	t.Helper()
	pp := NewPreprocessor()
	for k := range KnownExtensions {
		pp.KnownExtensions[k] = true
	}
	for k, v := range defines {
		if err := pp.Define(k, v); err != nil {
			t.Fatal(err)
		}
	}
	res, err := pp.Process(src)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	return res
}

func ppText(t *testing.T, src string, defines map[string]string) string {
	return FormatTokens(ppProcess(t, src, defines).Tokens)
}

func TestPPObjectMacro(t *testing.T) {
	got := ppText(t, "#define N 16\nfloat x = N;", nil)
	if !strings.Contains(got, `"16"`) || strings.Contains(got, `"N"`) {
		t.Errorf("macro not expanded: %s", got)
	}
}

func TestPPInjectedDefines(t *testing.T) {
	got := ppText(t, "float m = M;", map[string]string{"M": "1024.0"})
	if !strings.Contains(got, `"1024.0"`) {
		t.Errorf("injected define not expanded: %s", got)
	}
}

func TestPPFunctionMacro(t *testing.T) {
	src := "#define SQ(x) ((x)*(x))\nfloat y = SQ(3.0);"
	got := ppText(t, src, nil)
	if !strings.Contains(got, `'(' '(' "3.0" ')' '*' '(' "3.0" ')' ')'`) {
		t.Errorf("function macro expansion wrong: %s", got)
	}
}

func TestPPFunctionMacroNested(t *testing.T) {
	src := "#define ADD(a,b) ((a)+(b))\n#define TWICE(x) ADD(x,x)\nfloat y = TWICE(2.0);"
	got := ppText(t, src, nil)
	if !strings.Contains(got, "'+'") || strings.Contains(got, `"ADD"`) {
		t.Errorf("nested expansion wrong: %s", got)
	}
}

func TestPPRecursiveMacroStops(t *testing.T) {
	// Self-referential macros must not loop forever.
	got := ppText(t, "#define A A\nfloat x = A;", nil)
	if !strings.Contains(got, `"A"`) {
		t.Errorf("self-referential macro mishandled: %s", got)
	}
}

func TestPPUndef(t *testing.T) {
	got := ppText(t, "#define N 4\n#undef N\nfloat x = N;", nil)
	if !strings.Contains(got, `"N"`) {
		t.Errorf("undef ignored: %s", got)
	}
}

func TestPPConditionals(t *testing.T) {
	src := `
#define FAST 1
#ifdef FAST
float a;
#else
float b;
#endif
#ifndef MISSING
float c;
#endif
#if FAST == 1 && 2 < 3
float d;
#elif 1
float e;
#endif
#if 0
float f;
#elif defined(FAST)
float g;
#else
float h;
#endif
`
	got := ppText(t, src, nil)
	for _, want := range []string{`"a"`, `"c"`, `"d"`, `"g"`} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %s in %s", want, got)
		}
	}
	for _, bad := range []string{`"b"`, `"e"`, `"f"`, `"h"`} {
		if strings.Contains(got, bad) {
			t.Errorf("unexpected %s in %s", bad, got)
		}
	}
}

func TestPPNestedConditionals(t *testing.T) {
	src := "#if 1\n#if 0\nfloat a;\n#endif\nfloat b;\n#endif"
	got := ppText(t, src, nil)
	if strings.Contains(got, `"a"`) || !strings.Contains(got, `"b"`) {
		t.Errorf("nested conditional wrong: %s", got)
	}
}

func TestPPUnterminatedIf(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Process("#if 1\nfloat a;"); err == nil {
		t.Error("unterminated #if not rejected")
	}
}

func TestPPElseWithoutIf(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Process("#else"); err == nil {
		t.Error("#else without #if not rejected")
	}
}

func TestPPError(t *testing.T) {
	pp := NewPreprocessor()
	_, err := pp.Process("#error custom failure")
	if err == nil || !strings.Contains(err.Error(), "custom failure") {
		t.Errorf("#error mishandled: %v", err)
	}
	// Inactive #error is skipped.
	ppText(t, "#if 0\n#error should not fire\n#endif", nil)
}

func TestPPVersion(t *testing.T) {
	res := ppProcess(t, "#version 100\nfloat x;", nil)
	if res.Version != 100 {
		t.Errorf("Version = %d, want 100", res.Version)
	}
	pp := NewPreprocessor()
	if _, err := pp.Process("#version 300\n"); err == nil {
		t.Error("#version 300 not rejected by an ES2 implementation")
	}
}

func TestPPExtension(t *testing.T) {
	res := ppProcess(t, "#extension GL_EXT_mul24 : enable\nfloat x;", nil)
	if res.Extensions[ExtMul24] != ExtEnable {
		t.Errorf("extensions = %v", res.Extensions)
	}
	// The extension macro becomes defined.
	got := ppText(t, "#extension GL_EXT_mul24 : enable\n#ifdef GL_EXT_mul24\nfloat y;\n#endif", nil)
	if !strings.Contains(got, `"y"`) {
		t.Errorf("extension macro not defined: %s", got)
	}
	// Requiring an unknown extension fails.
	pp := NewPreprocessor()
	if _, err := pp.Process("#extension GL_FAKE_ext : require\n"); err == nil {
		t.Error("unknown required extension not rejected")
	}
	// Enabling an unknown extension is tolerated (spec: warn).
	pp2 := NewPreprocessor()
	if _, err := pp2.Process("#extension GL_FAKE_ext : enable\n"); err != nil {
		t.Errorf("enable of unknown extension should not fail: %v", err)
	}
}

func TestPPGLESPredefined(t *testing.T) {
	got := ppText(t, "#ifdef GL_ES\nfloat ok;\n#endif", nil)
	if !strings.Contains(got, `"ok"`) {
		t.Error("GL_ES not predefined")
	}
}

func TestPPLineContinuation(t *testing.T) {
	got := ppText(t, "#define LONG 1.0 + \\\n 2.0\nfloat x = LONG;", nil)
	if !strings.Contains(got, `"1.0" '+' "2.0"`) {
		t.Errorf("line continuation broken: %s", got)
	}
}

func TestPPReservedMacroNames(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Process("#define GL_custom 1\n"); err == nil {
		t.Error("GL_ macro prefix not rejected")
	}
	pp = NewPreprocessor()
	if _, err := pp.Process("#define float 1\n"); err == nil {
		t.Error("defining a keyword not rejected")
	}
}

func TestPPUnknownDirective(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Process("#frobnicate\n"); err == nil {
		t.Error("unknown directive not rejected")
	}
}

func TestPPMacroArgCount(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Process("#define F(a,b) a+b\nfloat x = F(1.0);"); err == nil {
		t.Error("wrong macro arg count not rejected")
	}
}

func TestPPConditionDivZero(t *testing.T) {
	pp := NewPreprocessor()
	if _, err := pp.Process("#if 1/0\n#endif"); err == nil {
		t.Error("division by zero in #if not rejected")
	}
}
