package glsl

import (
	"strings"
	"testing"
)

// parse runs preprocessor + parser (no sema).
func parse(t *testing.T, src string) *Program {
	t.Helper()
	pp := NewPreprocessor()
	res, err := pp.Process(src)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	prog, err := NewParser(res.Tokens).Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// parseErr expects a parse failure mentioning substr.
func parseErr(t *testing.T, src, substr string) {
	t.Helper()
	pp := NewPreprocessor()
	res, err := pp.Process(src)
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	_, err = NewParser(res.Tokens).Parse()
	if err == nil {
		t.Fatalf("expected parse error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestParseGlobals(t *testing.T) {
	prog := parse(t, `
uniform sampler2D tex;
attribute vec2 a_pos;
varying highp vec2 v_uv;
const float PI = 3.14;
uniform float weights[4];
float counter;
`)
	kinds := map[string]StorageQualifier{}
	for _, d := range prog.Decls {
		g, ok := d.(*GlobalDecl)
		if !ok {
			t.Fatalf("unexpected decl %T", d)
		}
		kinds[g.Name] = g.Storage
		if g.Name == "weights" && g.DeclType.ArrayLen != 4 {
			t.Errorf("weights array len = %d", g.DeclType.ArrayLen)
		}
		if g.Name == "v_uv" && g.Prec != PrecHigh {
			t.Errorf("v_uv precision = %v", g.Prec)
		}
	}
	want := map[string]StorageQualifier{
		"tex": StorUniform, "a_pos": StorAttribute, "v_uv": StorVarying,
		"PI": StorConst, "weights": StorUniform, "counter": StorNone,
	}
	for name, storage := range want {
		if kinds[name] != storage {
			t.Errorf("%s storage = %v, want %v", name, kinds[name], storage)
		}
	}
}

func TestParseCommaDeclarations(t *testing.T) {
	prog := parse(t, "uniform float a, b, c;")
	if len(prog.Decls) != 3 {
		t.Fatalf("comma globals split into %d decls", len(prog.Decls))
	}
	prog = parse(t, "void main(){ float x = 1.0, y = 2.0, z; }")
	fn := prog.Decls[0].(*FuncDecl)
	if len(fn.Body.Stmts) != 3 {
		t.Fatalf("comma locals split into %d stmts", len(fn.Body.Stmts))
	}
}

func TestParsePrecisionStatement(t *testing.T) {
	prog := parse(t, "precision mediump float;\nprecision lowp sampler2D;")
	pd := prog.Decls[0].(*PrecisionDecl)
	if pd.Prec != PrecMedium || pd.For != KFloat {
		t.Errorf("precision decl = %+v", pd)
	}
	parseErr(t, "precision mediump vec4;", "default precision")
	parseErr(t, "precision float;", "precision qualifier")
}

func TestParseFunctionForms(t *testing.T) {
	prog := parse(t, `
float f0() { return 1.0; }
float f1(void) { return 1.0; }
vec2 f2(in float a, out vec2 b, inout mat2 m) { return vec2(a); }
void main() {}
`)
	f2 := prog.Decls[2].(*FuncDecl)
	if len(f2.Params) != 3 {
		t.Fatalf("f2 params = %d", len(f2.Params))
	}
	if f2.Params[0].Qualifier != ParamIn || f2.Params[1].Qualifier != ParamOut || f2.Params[2].Qualifier != ParamInOut {
		t.Error("param qualifiers wrong")
	}
	f1 := prog.Decls[1].(*FuncDecl)
	if len(f1.Params) != 0 {
		t.Error("(void) parameter list not empty")
	}
}

func TestParsePrototypesRejected(t *testing.T) {
	parseErr(t, "float helper(float x);\nvoid main(){}", "prototypes")
}

func TestParseStructRejected(t *testing.T) {
	parseErr(t, "struct Light { vec3 dir; };", "struct")
}

func TestParseDoWhileRejected(t *testing.T) {
	parseErr(t, "void main(){ do { } while(true); }", "do-while")
}

func TestParseOperatorPrecedence(t *testing.T) {
	prog := parse(t, "void main(){ float x = 1.0 + 2.0 * 3.0; }")
	decl := prog.Decls[0].(*FuncDecl).Body.Stmts[0].(*DeclStmt)
	add, ok := decl.Init.(*Binary)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top op = %T", decl.Init)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != OpMul {
		t.Fatalf("rhs = %T, want * bound tighter than +", add.R)
	}
}

func TestParseComparisonAndLogicalPrecedence(t *testing.T) {
	// a < b && c > d  parses as (a<b) && (c>d)
	prog := parse(t, "void main(){ bool x = 1.0 < 2.0 && 3.0 > 2.0; }")
	decl := prog.Decls[0].(*FuncDecl).Body.Stmts[0].(*DeclStmt)
	and, ok := decl.Init.(*Binary)
	if !ok || and.Op != OpLAnd {
		t.Fatalf("top = %v", decl.Init)
	}
	if l, ok := and.L.(*Binary); !ok || l.Op != OpLT {
		t.Error("lhs not <")
	}
}

func TestParseAssignmentRightAssociative(t *testing.T) {
	prog := parse(t, "void main(){ float a; float b; a = b = 1.0; }")
	stmt := prog.Decls[0].(*FuncDecl).Body.Stmts[2].(*ExprStmt)
	outer, ok := stmt.X.(*Assign)
	if !ok {
		t.Fatalf("stmt = %T", stmt.X)
	}
	if _, ok := outer.RHS.(*Assign); !ok {
		t.Error("a = b = 1.0 not right-associative")
	}
}

func TestParseTernaryChain(t *testing.T) {
	prog := parse(t, "void main(){ float x = true ? 1.0 : false ? 2.0 : 3.0; }")
	decl := prog.Decls[0].(*FuncDecl).Body.Stmts[0].(*DeclStmt)
	tern, ok := decl.Init.(*Ternary)
	if !ok {
		t.Fatalf("init = %T", decl.Init)
	}
	if _, ok := tern.Else.(*Ternary); !ok {
		t.Error("nested ternary not in else branch")
	}
}

func TestParsePostfixChains(t *testing.T) {
	prog := parse(t, "uniform mat4 m;\nvoid main(){ float x = m[0].xyz.y; }")
	decl := prog.Decls[1].(*FuncDecl).Body.Stmts[0].(*DeclStmt)
	outer, ok := decl.Init.(*FieldSelect)
	if !ok || outer.Field != "y" {
		t.Fatalf("outer = %T", decl.Init)
	}
	mid, ok := outer.X.(*FieldSelect)
	if !ok || mid.Field != "xyz" {
		t.Fatalf("mid = %T", outer.X)
	}
	if _, ok := mid.X.(*Index); !ok {
		t.Fatalf("inner = %T", mid.X)
	}
}

func TestParseIncDec(t *testing.T) {
	prog := parse(t, "void main(){ float i; i++; ++i; i--; --i; }")
	stmts := prog.Decls[0].(*FuncDecl).Body.Stmts
	ops := []UnaryOp{OpPostInc, OpPreInc, OpPostDec, OpPreDec}
	for i, want := range ops {
		u, ok := stmts[i+1].(*ExprStmt).X.(*Unary)
		if !ok || u.Op != want {
			t.Errorf("stmt %d: got %T/%v, want %v", i+1, stmts[i+1].(*ExprStmt).X, u.Op, want)
		}
	}
}

func TestParseForLoopShapes(t *testing.T) {
	prog := parse(t, `
void main(){
	for (int i = 0; i < 4; i++) { }
	float j;
	for (j = 0.0; j < 1.0; j += 0.25) { }
}`)
	body := prog.Decls[0].(*FuncDecl).Body.Stmts
	f1, ok := body[0].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 0 = %T", body[0])
	}
	if _, ok := f1.Init.(*DeclStmt); !ok {
		t.Error("decl-style init not parsed")
	}
	f2 := body[2].(*ForStmt)
	if _, ok := f2.Init.(*ExprStmt); !ok {
		t.Error("assignment-style init not parsed")
	}
}

func TestParseIfElseChain(t *testing.T) {
	prog := parse(t, `
void main(){
	if (true) { } else if (false) { } else { }
}`)
	s := prog.Decls[0].(*FuncDecl).Body.Stmts[0].(*IfStmt)
	elseIf, ok := s.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %T", s.Else)
	}
	if elseIf.Else == nil {
		t.Error("final else missing")
	}
}

func TestParseErrorPositions(t *testing.T) {
	pp := NewPreprocessor()
	res, err := pp.Process("void main(){\n\tfloat x = ;\n}")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewParser(res.Tokens).Parse()
	if err == nil {
		t.Fatal("missing expression accepted")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Pos.Line != 2 {
		t.Errorf("error at line %d, want 2", e.Pos.Line)
	}
}

func TestParseMalformedInputs(t *testing.T) {
	cases := []string{
		"void main(){",                   // unterminated block
		"void main(){ float ; }",         // missing name
		"void main(){ x = 1.0 }",         // missing semicolon
		"void main(){ vec4 v = vec4(; }", // bad ctor
		"void 3main(){}",                 // bad name
		"uniform float a[0];",            // zero array
		"uniform float a[-1];",           // negative array
		"void main(){ for ;; {} }",       // bad for
		"void main(){ if true {} }",      // missing parens
	}
	for _, src := range cases {
		pp := NewPreprocessor()
		res, err := pp.Process(src)
		if err != nil {
			continue // preprocessor may reject; fine
		}
		if _, err := NewParser(res.Tokens).Parse(); err == nil {
			t.Errorf("malformed source accepted: %q", src)
		}
	}
}

func TestParseVoidVariableRejected(t *testing.T) {
	parseErr(t, "void x;", "void")
	parseErr(t, "void main(){ void x; }", "void")
}

func TestParseInvariantAccepted(t *testing.T) {
	// "invariant varying" is accepted (flag ignored).
	parse(t, "invariant varying vec2 v;\nvoid main(){}")
}

func TestParseConstructorVsDeclaration(t *testing.T) {
	// `vec2(...)` in expression position is a constructor, while
	// `vec2 name` is a declaration — the parser must disambiguate.
	prog := parse(t, "void main(){ vec2 a = vec2(1.0, 2.0); }")
	d := prog.Decls[0].(*FuncDecl).Body.Stmts[0].(*DeclStmt)
	call, ok := d.Init.(*Call)
	if !ok || call.Name != "vec2" {
		t.Fatalf("init = %T", d.Init)
	}
}
