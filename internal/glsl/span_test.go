package glsl

import (
	"errors"
	"testing"
)

// Source-span propagation: every diagnostic the front end produces must
// carry the line:column of the offending construct in the ORIGINAL source,
// including when the construct reaches the compiler through preprocessor
// macro expansion (the expansion re-stamps tokens with the use site's
// position, the way C compilers attribute macro-expanded errors).

// fragErrPos compiles expecting failure and returns the error position.
func fragErrPos(t *testing.T, src string) Pos {
	t.Helper()
	_, err := Frontend(src, CompileOptions{Stage: StageFragment})
	if err == nil {
		t.Fatalf("expected a compile error")
	}
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T) carries no source position", err, err)
	}
	return e.Pos
}

func TestSemaErrorSpanPlain(t *testing.T) {
	pos := fragErrPos(t, `precision mediump float;
void main() {
	float x = 1.0;
	x = missing;
	gl_FragColor = vec4(x);
}
`)
	if pos.Line != 4 {
		t.Errorf("undefined identifier reported at %v, want line 4", pos)
	}
	if pos.Col < 6 || pos.Col > 7 {
		t.Errorf("undefined identifier reported at column %d, want the identifier (6-7)", pos.Col)
	}
}

func TestSemaErrorSpanThroughDefine(t *testing.T) {
	// The faulty expression lives in a macro body on line 2; the use site
	// is line 4. The diagnostic must point at the use site: that is the
	// only position the shader author can act on in the expanded stream.
	pos := fragErrPos(t, `precision mediump float;
#define BAD (missing + 1.0)
void main() {
	float x = BAD;
	gl_FragColor = vec4(x);
}
`)
	if pos.Line != 4 {
		t.Errorf("macro-expanded error reported at %v, want the use site on line 4", pos)
	}
}

func TestSemaErrorSpanThroughFuncMacro(t *testing.T) {
	pos := fragErrPos(t, `precision mediump float;
#define MIX(a, b) ((a) * (b) + nope)
void main() {
	float x = MIX(1.0, 2.0);
	gl_FragColor = vec4(x);
}
`)
	if pos.Line != 4 {
		t.Errorf("function-macro error reported at %v, want the use site on line 4", pos)
	}
}

func TestSemaErrorSpanTypeMismatch(t *testing.T) {
	pos := fragErrPos(t, `precision mediump float;
uniform vec2 u;
void main() {
	float x = 1.0;
	x = u;
	gl_FragColor = vec4(x);
}
`)
	if pos.Line != 5 {
		t.Errorf("type mismatch reported at %v, want line 5", pos)
	}
}

func TestPreprocessorErrorSpan(t *testing.T) {
	pos := fragErrPos(t, `precision mediump float;
#if UNDEFINED_THING(
void main() {}
#endif
`)
	if pos.Line != 2 {
		t.Errorf("preprocessor error reported at %v, want line 2", pos)
	}
}

// TestTokenSpansSurviveExpansion checks the raw token stream: object-like
// and function-like macro bodies are re-stamped with the invocation
// position, and passed-through tokens keep their own.
func TestTokenSpansSurviveExpansion(t *testing.T) {
	pp := NewPreprocessor()
	res, err := pp.Process(`#define K 2.0
#define SQ(x) ((x) * (x))
float a = K;
float b = SQ(a);
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range res.Tokens {
		if tok.Pos.Line < 3 || tok.Pos.Line > 4 {
			t.Errorf("token %v stamped with line %d, want only use-site lines 3-4", tok, tok.Pos.Line)
		}
	}
}
