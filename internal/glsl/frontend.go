package glsl

// Frontend bundles preprocessing, parsing and semantic analysis behind one
// call, the way a driver's glCompileShader entry point would.

// CompileOptions configures a front-end run.
type CompileOptions struct {
	Stage ShaderStage
	// Defines are injected before the source is preprocessed, like -D
	// compiler flags. Map iteration order does not matter because macros
	// are independent definitions.
	Defines map[string]string
}

// Frontend runs the full front end over src and returns the checked shader.
func Frontend(src string, opts CompileOptions) (*CheckedShader, error) {
	pp := NewPreprocessor()
	for name := range KnownExtensions {
		pp.KnownExtensions[name] = true
	}
	for k, v := range opts.Defines {
		if err := pp.Define(k, v); err != nil {
			return nil, err
		}
	}
	res, err := pp.Process(src)
	if err != nil {
		return nil, err
	}
	prog, err := NewParser(res.Tokens).Parse()
	if err != nil {
		return nil, err
	}
	return Check(prog, CheckOpts{Stage: opts.Stage, Extensions: res.Extensions})
}
