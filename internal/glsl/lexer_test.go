package glsl

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("void main() { float x = 1.0; }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokKeyword, TokIdent, TokAssign, TokFloatLit, TokSemicolon, TokRBrace}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %s", len(toks), len(kinds), FormatTokens(toks))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokenKind
	}{
		{"0", TokIntLit},
		{"42", TokIntLit},
		{"0x1F", TokIntLit},
		{"1.0", TokFloatLit},
		{".5", TokFloatLit},
		{"3.", TokFloatLit},
		{"1e3", TokFloatLit},
		{"1.5e-2", TokFloatLit},
		{"2E+4", TokFloatLit},
	}
	for _, c := range cases {
		toks, err := LexAll(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != c.kind {
			t.Errorf("%q => %s, want single %s", c.src, FormatTokens(toks), c.kind)
		}
	}
}

func TestLexMalformedNumbers(t *testing.T) {
	for _, src := range []string{"1.0f", "0x", "1e", "1eX", "123abc"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("a += b * c <= d && !e != f ^^ g || h++")
	if err != nil {
		t.Fatal(err)
	}
	var ops []TokenKind
	for _, tok := range toks {
		if tok.Kind != TokIdent {
			ops = append(ops, tok.Kind)
		}
	}
	want := []TokenKind{TokPlusEq, TokStar, TokLe, TokAnd, TokNot, TokNe, TokXor, TokOr, TokInc}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %s, want %s", i, ops[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
float /* block
spanning lines */ x;
`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("got %s", FormatTokens(toks))
	}
	// Line numbers survive comments.
	if toks[0].Pos.Line != 3 {
		t.Errorf("float at line %d, want 3", toks[0].Pos.Line)
	}
	if toks[2].Pos.Line != 4 {
		t.Errorf("x ; at line %d, want 4", toks[2].Pos.Line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := LexAll("/* never closed"); err == nil {
		t.Error("unterminated block comment not rejected")
	}
}

func TestLexReservedKeyword(t *testing.T) {
	_, err := LexAll("double x;")
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Errorf("reserved keyword not rejected: %v", err)
	}
}

func TestLexBitwiseRejected(t *testing.T) {
	for _, src := range []string{"a & b", "a | b", "a ^ b"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("%q: bitwise operator not rejected", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("bb at %v", toks[1].Pos)
	}
}
