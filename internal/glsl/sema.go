package glsl

import (
	"fmt"
)

// LoopInfo is the static description of an ES2-restricted for loop. GLSL ES
// 1.00 Appendix A requires loops to have compile-time-computable trip
// counts; embedded compilers rely on this to fully unroll fragment-shader
// loops, which is what makes instruction-count limits bite for large block
// sizes (paper §V-B, Fig. 4b).
type LoopInfo struct {
	Sym   *Symbol
	Start float64
	CmpOp BinaryOp
	Bound float64
	Step  float64 // signed per-iteration increment
	Trip  int
}

// maxLoopTrip is a front-end sanity cap on statically-computed trip counts,
// far above any real shader; device-specific limits are enforced by the
// back end.
const maxLoopTrip = 1 << 22

// CheckOpts configures semantic analysis.
type CheckOpts struct {
	Stage ShaderStage
	// Extensions holds the #extension directives from preprocessing.
	Extensions map[string]ExtensionBehavior
}

// CheckedShader is the result of semantic analysis: the typed AST plus the
// interface (uniforms, attributes, varyings) and resource usage the linker
// and back end need.
type CheckedShader struct {
	Stage      ShaderStage
	Prog       *Program
	Uniforms   []*Symbol
	Attributes []*Symbol
	Varyings   []*Symbol
	Functions  map[string]*FuncDecl
	Main       *FuncDecl
	Loops      map[*ForStmt]LoopInfo

	// Resource usage in spec units.
	UniformVectors int
	VaryingVectors int
	AttributeSlots int

	UsesDiscard     bool
	WritesFragColor bool
	WritesPosition  bool
	Extensions      map[string]ExtensionBehavior
	DefaultPrec     map[BasicKind]Precision
}

type checker struct {
	opts      CheckOpts
	out       *CheckedShader
	scopes    []map[string]*Symbol
	frozen    map[*Symbol]bool // live loop indices, not assignable
	curFn     *FuncDecl
	loopDepth int
}

// Check performs semantic analysis on a parsed program.
func Check(prog *Program, opts CheckOpts) (*CheckedShader, error) {
	c := &checker{
		opts: opts,
		out: &CheckedShader{
			Stage:       opts.Stage,
			Prog:        prog,
			Functions:   make(map[string]*FuncDecl),
			Loops:       make(map[*ForStmt]LoopInfo),
			Extensions:  opts.Extensions,
			DefaultPrec: map[BasicKind]Precision{},
		},
		frozen: make(map[*Symbol]bool),
	}
	// GLES2 default precisions: vertex float=highp int=mediump;
	// fragment float has NO default (must be declared), int=mediump;
	// samplers lowp.
	c.out.DefaultPrec[KInt] = PrecMedium
	c.out.DefaultPrec[KSampler2D] = PrecLow
	c.out.DefaultPrec[KSamplerCube] = PrecLow
	if opts.Stage == StageVertex {
		c.out.DefaultPrec[KFloat] = PrecHigh
	}
	c.push()
	defer c.pop()

	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *PrecisionDecl:
			c.out.DefaultPrec[d.For] = d.Prec
		case *GlobalDecl:
			if err := c.checkGlobal(d); err != nil {
				return nil, err
			}
		case *FuncDecl:
			if err := c.checkFunc(d); err != nil {
				return nil, err
			}
		default:
			return nil, errf(d.Pos(), "unsupported top-level declaration")
		}
	}
	if c.out.Main == nil {
		return nil, errf(Pos{Line: 1, Col: 1}, "missing void main()")
	}
	if opts.Stage == StageFragment {
		usesFloat := false
		for _, fn := range c.out.Functions {
			_ = fn
			usesFloat = true // every useful fragment shader touches floats
		}
		if usesFloat {
			if _, ok := c.out.DefaultPrec[KFloat]; !ok {
				return nil, errf(Pos{Line: 1, Col: 1}, "fragment shaders must declare a default float precision (e.g. \"precision mediump float;\")")
			}
		}
	}
	return c.out, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, sym *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, ok := top[sym.Name]; ok {
		return errf(pos, "redeclaration of %q in the same scope", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) extEnabled(name string) bool {
	b, ok := c.opts.Extensions[name]
	return ok && (b == ExtEnable || b == ExtRequire || b == ExtWarn)
}

// vectorSlots returns the number of 4-component "vectors" a type occupies
// in the spec's resource-counting model.
func vectorSlots(t Type) int {
	per := 1
	switch t.Kind {
	case KMat2:
		per = 2
	case KMat3:
		per = 3
	case KMat4:
		per = 4
	}
	n := 1
	if t.ArrayLen > 0 {
		n = t.ArrayLen
	}
	return per * n
}

func (c *checker) checkGlobal(d *GlobalDecl) error {
	if c.lookup(d.Name) != nil {
		return errf(d.P, "redeclaration of %q", d.Name)
	}
	if d.DeclType.IsSampler() && d.Storage != StorUniform {
		return errf(d.P, "samplers must be declared uniform")
	}
	kind := SymGlobal
	switch d.Storage {
	case StorConst:
		kind = SymConst
		if d.Init == nil {
			return errf(d.P, "const variable %q requires an initializer", d.Name)
		}
	case StorAttribute:
		kind = SymAttribute
		if c.opts.Stage != StageVertex {
			return errf(d.P, "attribute %q declared outside a vertex shader", d.Name)
		}
		if d.DeclType.IsArray() {
			return errf(d.P, "attributes cannot be arrays")
		}
		if !d.DeclType.IsFloatBased() {
			return errf(d.P, "attribute %q must have a float-based type, got %s", d.Name, d.DeclType)
		}
	case StorUniform:
		kind = SymUniform
	case StorVarying:
		kind = SymVarying
		base := d.DeclType
		base.ArrayLen = 0
		if !base.IsFloatBased() {
			return errf(d.P, "varying %q must have a float-based type, got %s", d.Name, d.DeclType)
		}
	}
	if d.Init != nil && d.Storage != StorConst && d.Storage != StorNone {
		return errf(d.P, "%s variable %q cannot have an initializer", d.Storage, d.Name)
	}
	sym := &Symbol{Name: d.Name, Kind: kind, Type: d.DeclType, Prec: c.effPrec(d.Prec, d.DeclType)}
	if d.Init != nil {
		e, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		d.Init = e
		if !typesEqual(e.Type(), d.DeclType) {
			return errf(d.P, "cannot initialize %s %q with %s", d.DeclType, d.Name, e.Type())
		}
		if kind == SymConst {
			if e.ConstVal() == nil {
				return errf(d.P, "initializer of const %q is not a constant expression", d.Name)
			}
			sym.Const = e.ConstVal()
		}
	}
	d.Sym = sym
	if err := c.declare(d.P, sym); err != nil {
		return err
	}
	switch kind {
	case SymUniform:
		c.out.Uniforms = append(c.out.Uniforms, sym)
		c.out.UniformVectors += vectorSlots(d.DeclType)
	case SymAttribute:
		c.out.Attributes = append(c.out.Attributes, sym)
		c.out.AttributeSlots += vectorSlots(d.DeclType)
	case SymVarying:
		c.out.Varyings = append(c.out.Varyings, sym)
		c.out.VaryingVectors += vectorSlots(d.DeclType)
	}
	return nil
}

func (c *checker) effPrec(p Precision, t Type) Precision {
	if p != PrecNone {
		return p
	}
	if dp, ok := c.out.DefaultPrec[t.ComponentKind()]; ok {
		return dp
	}
	if t.IsSampler() {
		if dp, ok := c.out.DefaultPrec[t.Kind]; ok {
			return dp
		}
	}
	return PrecNone
}

func (c *checker) checkFunc(f *FuncDecl) error {
	if _, exists := c.out.Functions[f.Name]; exists {
		return errf(f.P, "redefinition of function %q (overloading user functions is not supported)", f.Name)
	}
	if len(LookupBuiltin(f.Name)) > 0 {
		return errf(f.P, "cannot redefine builtin function %q", f.Name)
	}
	if f.Name == "main" {
		if f.Ret.Kind != KVoid || len(f.Params) > 0 {
			return errf(f.P, "main must be declared as void main()")
		}
		c.out.Main = f
	}
	c.out.Functions[f.Name] = f
	prev := c.curFn
	c.curFn = f
	defer func() { c.curFn = prev }()
	c.push()
	defer c.pop()
	for i := range f.Params {
		p := &f.Params[i]
		if p.DeclType.IsSampler() && p.Qualifier != ParamIn {
			return errf(p.P, "sampler parameters must be 'in'")
		}
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.DeclType, Prec: c.effPrec(p.Prec, p.DeclType)}
		p.Sym = sym
		if err := c.declare(p.P, sym); err != nil {
			return err
		}
	}
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	if f.Name == "main" {
		// Stage-output checks are advisory; GLES2 drivers accept shaders
		// that never write outputs (the result is undefined), so we only
		// record the facts.
		_ = f
	}
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return c.checkBlock(s)
	case *DeclStmt:
		return c.checkDecl(s)
	case *ExprStmt:
		e, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		s.X = e
		return nil
	case *IfStmt:
		cond, err := c.checkExpr(s.Cond)
		if err != nil {
			return err
		}
		s.Cond = cond
		if cond.Type() != T(KBool) {
			return errf(s.P, "if condition must be bool, got %s", cond.Type())
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *ForStmt:
		return c.checkFor(s)
	case *WhileStmt:
		return errf(s.P, "while loops are not supported by this GLSL ES 1.00 implementation (Appendix A restrictions)")
	case *ReturnStmt:
		if c.curFn == nil {
			return errf(s.P, "return outside function")
		}
		if s.X == nil {
			if c.curFn.Ret.Kind != KVoid {
				return errf(s.P, "missing return value in function returning %s", c.curFn.Ret)
			}
			return nil
		}
		e, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		s.X = e
		if !typesEqual(e.Type(), c.curFn.Ret) {
			return errf(s.P, "cannot return %s from function returning %s", e.Type(), c.curFn.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(s.P, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.P, "continue outside loop")
		}
		return nil
	case *DiscardStmt:
		if c.opts.Stage != StageFragment {
			return errf(s.P, "discard is only valid in fragment shaders")
		}
		c.out.UsesDiscard = true
		return nil
	}
	return errf(s.Pos(), "unsupported statement")
}

func (c *checker) checkDecl(d *DeclStmt) error {
	if d.DeclType.IsSampler() {
		return errf(d.P, "local variables cannot have sampler types")
	}
	sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.DeclType, Prec: c.effPrec(d.Prec, d.DeclType)}
	if d.IsConst {
		sym.Kind = SymConst
		if d.Init == nil {
			return errf(d.P, "const variable %q requires an initializer", d.Name)
		}
	}
	if d.Init != nil {
		e, err := c.checkExpr(d.Init)
		if err != nil {
			return err
		}
		d.Init = e
		if !typesEqual(e.Type(), d.DeclType) {
			return errf(d.P, "cannot initialize %s %q with %s", d.DeclType, d.Name, e.Type())
		}
		if d.IsConst {
			if e.ConstVal() == nil {
				return errf(d.P, "initializer of const %q is not a constant expression", d.Name)
			}
			sym.Const = e.ConstVal()
		}
	}
	d.Sym = sym
	return c.declare(d.P, sym)
}

// checkFor enforces the GLSL ES Appendix A loop restrictions and computes
// the static trip count.
func (c *checker) checkFor(s *ForStmt) error {
	c.push()
	defer c.pop()

	var loopSym *Symbol
	var start float64
	switch init := s.Init.(type) {
	case *DeclStmt:
		if err := c.checkDecl(init); err != nil {
			return err
		}
		if init.Init == nil || init.Init.ConstVal() == nil {
			return errf(init.P, "loop index %q must be initialized with a constant expression", init.Name)
		}
		loopSym = init.Sym
		start = init.Init.ConstVal().Float()
	case *ExprStmt:
		asg, ok := init.X.(*Assign)
		if !ok || asg.Op != AsgEq {
			return errf(init.P, "for-loop init must be a declaration or a simple assignment")
		}
		lhs, err := c.checkExpr(asg.LHS)
		if err != nil {
			return err
		}
		id, ok := lhs.(*Ident)
		if !ok {
			return errf(init.P, "for-loop init must assign a plain variable")
		}
		rhs, err := c.checkExpr(asg.RHS)
		if err != nil {
			return err
		}
		asg.LHS, asg.RHS = lhs, rhs
		asg.T = lhs.Type()
		if rhs.ConstVal() == nil {
			return errf(init.P, "loop index %q must be initialized with a constant expression", id.Name)
		}
		if !typesEqual(lhs.Type(), rhs.Type()) {
			return errf(init.P, "loop init type mismatch: %s = %s", lhs.Type(), rhs.Type())
		}
		loopSym = id.Sym
		start = rhs.ConstVal().Float()
	case nil:
		return errf(s.P, "for loops require an init statement with a loop index (GLSL ES Appendix A)")
	default:
		return errf(s.P, "unsupported for-loop init")
	}
	if loopSym.Type != T(KFloat) && loopSym.Type != T(KInt) {
		return errf(s.P, "loop index must be float or int, got %s", loopSym.Type)
	}

	if s.Cond == nil {
		return errf(s.P, "for loops require a termination condition (GLSL ES Appendix A)")
	}
	cond, err := c.checkExpr(s.Cond)
	if err != nil {
		return err
	}
	s.Cond = cond
	bin, ok := cond.(*Binary)
	if !ok {
		return errf(cond.Pos(), "loop condition must compare the loop index against a constant expression")
	}
	lid, ok := bin.L.(*Ident)
	if !ok || lid.Sym != loopSym {
		return errf(cond.Pos(), "loop condition must have the loop index on the left-hand side")
	}
	switch bin.Op {
	case OpLT, OpLE, OpGT, OpGE, OpNE, OpEQ:
	default:
		return errf(cond.Pos(), "loop condition operator must be relational")
	}
	if bin.R.ConstVal() == nil {
		return errf(bin.R.Pos(), "loop bound must be a constant expression (GLSL ES Appendix A)")
	}
	bound := bin.R.ConstVal().Float()

	if s.Post == nil {
		return errf(s.P, "for loops require an increment expression (GLSL ES Appendix A)")
	}
	post, err := c.checkExpr(s.Post)
	if err != nil {
		return err
	}
	s.Post = post
	step, err := loopStep(post, loopSym)
	if err != nil {
		return err
	}

	info := LoopInfo{Sym: loopSym, Start: start, CmpOp: bin.Op, Bound: bound, Step: step}
	trip, err := computeTrip(info, loopSym.Type.Kind == KFloat)
	if err != nil {
		return errf(s.P, "%v", err)
	}
	info.Trip = trip
	c.out.Loops[s] = info

	// The loop index is immutable inside the body.
	c.frozen[loopSym] = true
	defer delete(c.frozen, loopSym)
	c.loopDepth++
	defer func() { c.loopDepth-- }()
	return c.checkStmt(s.Body)
}

// loopStep extracts the signed per-iteration step from the post expression.
func loopStep(post Expr, loopSym *Symbol) (float64, error) {
	switch p := post.(type) {
	case *Unary:
		id, ok := p.X.(*Ident)
		if !ok || id.Sym != loopSym {
			return 0, errf(p.Pos(), "loop increment must modify the loop index")
		}
		switch p.Op {
		case OpPreInc, OpPostInc:
			return 1, nil
		case OpPreDec, OpPostDec:
			return -1, nil
		}
	case *Assign:
		id, ok := p.LHS.(*Ident)
		if !ok || id.Sym != loopSym {
			return 0, errf(p.Pos(), "loop increment must modify the loop index")
		}
		switch p.Op {
		case AsgAdd, AsgSub:
			cv := p.RHS.ConstVal()
			if cv == nil {
				return 0, errf(p.Pos(), "loop step must be a constant expression")
			}
			if p.Op == AsgSub {
				return -cv.Float(), nil
			}
			return cv.Float(), nil
		case AsgEq:
			// i = i + c or i = i - c
			b, ok := p.RHS.(*Binary)
			if ok && (b.Op == OpAdd || b.Op == OpSub) {
				if bid, ok2 := b.L.(*Ident); ok2 && bid.Sym == loopSym && b.R.ConstVal() != nil {
					st := b.R.ConstVal().Float()
					if b.Op == OpSub {
						st = -st
					}
					return st, nil
				}
			}
		}
	}
	return 0, errf(post.Pos(), "loop increment must be ++, --, += const, -= const or index = index ± const (GLSL ES Appendix A)")
}

// computeTrip simulates the loop header arithmetic to obtain the trip
// count, using float32 accumulation when the index is a float so the count
// matches what the shader VM will actually execute.
func computeTrip(info LoopInfo, isFloat bool) (int, error) {
	if info.Step == 0 {
		return 0, fmt.Errorf("loop step is zero: loop never terminates")
	}
	test := func(i float64) bool {
		switch info.CmpOp {
		case OpLT:
			return i < info.Bound
		case OpLE:
			return i <= info.Bound
		case OpGT:
			return i > info.Bound
		case OpGE:
			return i >= info.Bound
		case OpNE:
			return i != info.Bound
		case OpEQ:
			return i == info.Bound
		}
		return false
	}
	trip := 0
	if isFloat {
		i := float32(info.Start)
		for test(float64(i)) {
			trip++
			if trip > maxLoopTrip {
				return 0, fmt.Errorf("loop trip count exceeds implementation maximum (%d)", maxLoopTrip)
			}
			i += float32(info.Step)
		}
	} else {
		i := int64(info.Start)
		step := int64(info.Step)
		if step == 0 {
			return 0, fmt.Errorf("integer loop step truncates to zero")
		}
		for test(float64(i)) {
			trip++
			if trip > maxLoopTrip {
				return 0, fmt.Errorf("loop trip count exceeds implementation maximum (%d)", maxLoopTrip)
			}
			i += step
		}
	}
	return trip, nil
}

func typesEqual(a, b Type) bool { return a == b }

// isLValue reports whether e can be assigned to in the current stage,
// returning a reason when it cannot.
func (c *checker) isLValue(e Expr) (bool, string) {
	switch e := e.(type) {
	case *Ident:
		sym := e.Sym
		if sym == nil {
			return false, "unresolved identifier"
		}
		if c.frozen[sym] {
			return false, fmt.Sprintf("loop index %q cannot be modified inside the loop body (GLSL ES Appendix A)", sym.Name)
		}
		switch sym.Kind {
		case SymConst:
			return false, fmt.Sprintf("%q is const", sym.Name)
		case SymUniform:
			return false, fmt.Sprintf("uniform %q is read-only", sym.Name)
		case SymAttribute:
			return false, fmt.Sprintf("attribute %q is read-only", sym.Name)
		case SymVarying:
			if c.opts.Stage != StageVertex {
				return false, fmt.Sprintf("varying %q is read-only in fragment shaders", sym.Name)
			}
			return true, ""
		case SymBuiltinVar:
			bv := builtinVars[sym.Name]
			if !bv.writable {
				return false, fmt.Sprintf("%q is read-only", sym.Name)
			}
			return true, ""
		}
		return true, ""
	case *FieldSelect:
		// Swizzles are assignable when the base is and no component
		// repeats.
		seen := map[int]bool{}
		for _, ci := range e.Comps {
			if seen[ci] {
				return false, "swizzle with repeated components is not assignable"
			}
			seen[ci] = true
		}
		return c.isLValue(e.X)
	case *Index:
		return c.isLValue(e.X)
	}
	return false, "expression is not assignable"
}
