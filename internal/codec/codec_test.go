package codec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, d := range []Depth{Depth32, Depth24} {
		var buf [4]byte
		for _, v := range []float64{0, 0.5, 0.25, 1.0 / 3, 0.9999, 1 - d.Quantum()} {
			d.Encode(v, buf[:])
			got := d.Decode(buf[:])
			if math.Abs(got-v) > d.Quantum() {
				t.Errorf("%s: roundtrip %g -> %g (err %g > quantum %g)", d, v, got, math.Abs(got-v), d.Quantum())
			}
		}
	}
}

func TestEncodeClamps(t *testing.T) {
	var buf [4]byte
	Depth32.Encode(-0.5, buf[:])
	if Depth32.Decode(buf[:]) != 0 {
		t.Error("negative value not clamped to 0")
	}
	Depth32.Encode(2.0, buf[:])
	if got := Depth32.Decode(buf[:]); got >= 1 {
		t.Errorf("overflow encoded as %g, want < 1", got)
	}
}

func TestDepth24IgnoresAlpha(t *testing.T) {
	var buf [4]byte
	Depth24.Encode(0.7, buf[:])
	if buf[3] != 255 {
		t.Errorf("alpha = %d, want opaque padding", buf[3])
	}
	// Decoding must not read the alpha.
	buf[3] = 0
	a := Depth24.Decode(buf[:])
	buf[3] = 77
	if b := Depth24.Decode(buf[:]); a != b {
		t.Error("Depth24 decode reads the alpha channel")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw) / float64(math.MaxUint32+int64(1)) // [0,1)
		var buf [4]byte
		for _, d := range []Depth{Depth32, Depth24} {
			d.Encode(v, buf[:])
			if math.Abs(d.Decode(buf[:])-v) > d.Quantum() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeMonotoneProperty(t *testing.T) {
	// Encoding preserves order (monotone), which linear kernels rely on.
	f := func(a, b uint32) bool {
		x := float64(a) / float64(math.MaxUint32+int64(1))
		y := float64(b) / float64(math.MaxUint32+int64(1))
		if x > y {
			x, y = y, x
		}
		var bx, by [4]byte
		Depth32.Encode(x, bx[:])
		Depth32.Encode(y, by[:])
		return Depth32.Decode(bx[:]) <= Depth32.Decode(by[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeMapping(t *testing.T) {
	r := Range{-10, 30}
	for _, v := range []float64{-10, 0, 15, 29.9} {
		u := r.ToUnit(v)
		if u < 0 || u >= 1.0001 {
			t.Errorf("ToUnit(%g) = %g out of [0,1)", v, u)
		}
		if got := r.FromUnit(u); math.Abs(got-v) > 1e-12 {
			t.Errorf("range roundtrip %g -> %g", v, got)
		}
	}
	if r.Width() != 40 {
		t.Errorf("Width = %g", r.Width())
	}
	if (Range{5, 5}).ToUnit(7) != 0 {
		t.Error("degenerate range not handled")
	}
}

func TestMatrixEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMatrix(8, 16)
	m.Range = Range{0, 4}
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 4
	}
	tex := m.EncodeTexture(Depth32)
	if len(tex) != 8*16*4 {
		t.Fatalf("texture %d bytes", len(tex))
	}
	out := NewMatrix(8, 16)
	out.Range = m.Range
	if err := out.DecodeTexture(Depth32, tex); err != nil {
		t.Fatal(err)
	}
	maxErr := out.MaxAbsError(Depth32)
	for i := range m.Data {
		if math.Abs(out.Data[i]-m.Data[i]) > maxErr+1e-12 {
			t.Fatalf("element %d: %g vs %g (bound %g)", i, out.Data[i], m.Data[i], maxErr)
		}
	}
	if err := out.DecodeTexture(Depth32, tex[:10]); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 7.5)
	if m.At(2, 3) != 7.5 {
		t.Error("At/Set broken")
	}
}

func TestGLSLSnippets(t *testing.T) {
	for _, d := range []Depth{Depth32, Depth24} {
		r := ReconstrGLSL(d)
		e := EncodeGLSL(d)
		if !strings.Contains(r, "dot(") {
			t.Errorf("%s reconstr does not use the dot builtin", d)
		}
		if !strings.Contains(e, "clamp(") || !strings.Contains(e, "floor(") {
			t.Errorf("%s encoder missing clamp/floor", d)
		}
		if d == Depth24 && strings.Contains(e, "float a =") {
			t.Error("fp24 encoder emits a fourth channel")
		}
	}
}

func TestQuantum(t *testing.T) {
	if Depth32.Quantum() != math.Pow(2, -32) {
		t.Error("Depth32 quantum")
	}
	if Depth24.Quantum() != math.Pow(2, -24) {
		t.Error("Depth24 quantum")
	}
}
