// Package codec implements the float↔RGBA8 data encoding of Trompouki &
// Kosmidis, "Towards General Purpose Computations on Low-End Mobile GPUs"
// (DATE 2016) — reference [13] of the reproduced paper.
//
// OpenGL ES 2.0 fragment shaders can only read textures and write the
// framebuffer as normalised 8-bit RGBA, so GPGPU data is carried as a
// fixed-point fraction spread over the channels: a value v ∈ [0,1) is
// stored as bytes b0..b3 with v ≈ b0/2⁸ + b1/2¹⁶ + b2/2²⁴ + b3/2³².
// Shader-side, reconstr_in rebuilds the value with a single dot product and
// encode_out splits it back with floor/fract chains. The achievable
// precision is 24–32 bits depending on the shader float precision — the
// reason the paper's fp24 optimisation (mul24 + 3-byte I/O) loses nothing.
//
// Values outside [0,1) are mapped through an affine Range (lo,hi) on the
// CPU side; linear kernels compose with the affine map in well-defined
// ways (see Range).
package codec

import (
	"fmt"
	"math"
)

// Depth selects how many channels carry payload.
type Depth int

// Supported encoding depths.
const (
	// Depth32 uses all four channels: ~32-bit fixed point (quantised by
	// the 8-bit store to 2⁻³² steps, but limited by shader float
	// precision to 24+ effective bits).
	Depth32 Depth = 4
	// Depth24 uses RGB only — the paper's fp24 kernels: 24-bit fixed
	// point, 25% less traffic, exact under mul24 arithmetic.
	Depth24 Depth = 3
)

// Quantum returns the representable step size.
func (d Depth) Quantum() float64 {
	return math.Pow(2, -8*float64(d))
}

func (d Depth) String() string {
	if d == Depth24 {
		return "fp24"
	}
	return "fp32"
}

// Encode packs a value v ∈ [0,1) into the leading channels of dst
// (truncating, as the shader's floor-based encoder does). Values outside
// [0,1) are clamped to the representable range.
func (d Depth) Encode(v float64, dst []byte) {
	if v < 0 {
		v = 0
	}
	max := 1 - d.Quantum()
	if v > max {
		v = max
	}
	acc := v
	for i := 0; i < int(d); i++ {
		acc *= 256
		b := math.Floor(acc)
		if b > 255 {
			b = 255
		}
		dst[i] = byte(b)
		acc -= b
	}
	// Unused channels hold a fully-opaque alpha so encoded textures remain
	// valid images.
	for i := int(d); i < 4 && i < len(dst); i++ {
		dst[i] = 255
	}
}

// Decode unpacks a value from the leading channels of src.
func (d Depth) Decode(src []byte) float64 {
	var v float64
	scale := 1.0
	for i := 0; i < int(d); i++ {
		scale /= 256
		v += float64(src[i]) * scale
	}
	return v
}

// Range is the affine map between user values [Lo,Hi] and the encoded
// domain [0,1). GPGPU kernels operate in the encoded domain; the harness
// picks ranges so kernel outputs stay in [0,1) (e.g. sum of two [0,1)
// inputs uses an output range twice as wide).
type Range struct {
	Lo, Hi float64
}

// Unit is the identity range [0,1).
var Unit = Range{0, 1}

// ToUnit maps a user value into [0,1).
func (r Range) ToUnit(v float64) float64 {
	if r.Hi == r.Lo {
		return 0
	}
	return (v - r.Lo) / (r.Hi - r.Lo)
}

// FromUnit maps an encoded value back to user space.
func (r Range) FromUnit(u float64) float64 {
	return r.Lo + u*(r.Hi-r.Lo)
}

// Width returns Hi-Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Matrix is a dense row-major float64 matrix with an encoding range, the
// host-side view of a GPGPU operand.
type Matrix struct {
	Rows, Cols int
	Data       []float64
	Range      Range
}

// NewMatrix allocates a zero matrix with the unit range.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols), Range: Unit}
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r,c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// EncodeTexture packs the matrix into an RGBA8 texel array (one texel per
// element, row-major, row 0 at v=0).
func (m *Matrix) EncodeTexture(d Depth) []byte {
	out := make([]byte, m.Rows*m.Cols*4)
	for i, v := range m.Data {
		d.Encode(m.Range.ToUnit(v), out[i*4:i*4+4])
	}
	return out
}

// DecodeTexture unpacks an RGBA8 texel array produced by the GPU into the
// matrix, applying the inverse range map.
func (m *Matrix) DecodeTexture(d Depth, texels []byte) error {
	if len(texels) < m.Rows*m.Cols*4 {
		return fmt.Errorf("codec: texel buffer %d bytes, need %d", len(texels), m.Rows*m.Cols*4)
	}
	for i := range m.Data {
		m.Data[i] = m.Range.FromUnit(d.Decode(texels[i*4 : i*4+4]))
	}
	return nil
}

// MaxAbsError is the worst-case absolute error of a round trip through the
// encoding for this matrix's range.
func (m *Matrix) MaxAbsError(d Depth) float64 {
	return d.Quantum() * math.Abs(m.Range.Width())
}

// GLSL snippet generation: the reconstr_in / encode_out transformation
// functions of [13], emitted as GLSL helper functions for kernel sources.

// ReconstrGLSL returns the reconstr_in helper: a single dot product maps a
// texel to the encoded value (the paper's kernel-code optimisation of using
// the dot builtin, which is one hardware instruction).
func ReconstrGLSL(d Depth) string {
	switch d {
	case Depth24:
		return `float reconstr_in(vec4 t) {
	return dot(t.rgb, vec3(255.0/256.0, 255.0/65536.0, 255.0/16777216.0));
}
`
	default:
		return `float reconstr_in(vec4 t) {
	return dot(t, vec4(255.0/256.0, 255.0/65536.0, 255.0/16777216.0, 255.0/4294967296.0));
}
`
	}
}

// EncodeGLSL returns the encode_out helper that splits a value in [0,1)
// into channel bytes for gl_FragColor.
//
// The saturation bound needs care at Depth32: the ideal 1 - 2⁻³² is not a
// float32 and rounds back to 1.0, which would make encode_out(1.0) wrap —
// floor(256.0) saturates the red byte but zeroes the rest, decoding to
// 255/256. Clamping to the largest float32 below 1.0 (1 - 2⁻²⁴) keeps every
// sub-1.0 encoding bit-identical while saturated inputs land within 2⁻²⁴ of
// full scale. Depth24's bound is exactly representable, so it is unaffected.
func EncodeGLSL(d Depth) string {
	if d == Depth24 {
		return `vec4 encode_out(float v) {
	v = clamp(v, 0.0, 1.0 - 1.0/16777216.0);
	float r = floor(v * 256.0);
	v = v * 256.0 - r;
	float g = floor(v * 256.0);
	v = v * 256.0 - g;
	float b = floor(v * 256.0);
	return vec4(r / 255.0, g / 255.0, b / 255.0, 1.0);
}
`
	}
	return `vec4 encode_out(float v) {
	v = clamp(v, 0.0, 0.99999994);
	float r = floor(v * 256.0);
	v = v * 256.0 - r;
	float g = floor(v * 256.0);
	v = v * 256.0 - g;
	float b = floor(v * 256.0);
	v = v * 256.0 - b;
	float a = floor(v * 256.0);
	return vec4(r / 255.0, g / 255.0, b / 255.0, a / 255.0);
}
`
}
