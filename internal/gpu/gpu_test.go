package gpu

import (
	"testing"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/mem"
	"gles2gpgpu/internal/timing"
)

// testProfile returns a deterministic profile with simple round numbers:
// fragment work dominates, driver costs are visible but small.
func testProfile() *device.Profile {
	p := device.Generic()
	p.GPUClockHz = 1e9
	p.FragmentParallelism = 1 // 1 cycle = 1 ns of fragment time
	p.VertexCyclesPerVertex = 100
	p.QueueDepth = 2
	p.DrawSubmitCost = 10 * timing.Microsecond
	p.FlushCost = 500 * timing.Microsecond
	p.MemBus = mem.Bus{BytesPerSecond: 4e9}
	p.CopyEngine = mem.Bus{BytesPerSecond: 1e9, Latency: 10 * timing.Microsecond}
	p.UploadBus = mem.Bus{BytesPerSecond: 1e9, Latency: 5 * timing.Microsecond}
	return p
}

// drawJob builds a 1 ms fragment-stage job writing to target.
func drawJob(target ResID, reads ...ResID) DrawJob {
	return DrawJob{
		Target:        target,
		TargetW:       256,
		TargetH:       256,
		CoveredPixels: 256 * 256,
		FragCycles:    1_000_000, // 1 ms at 1 GHz ×1
		VertexCount:   6,
		Reads:         reads,
	}
}

func TestDeferredOverlapThroughput(t *testing.T) {
	// Independent frames to alternating cleared targets: steady-state
	// throughput must approach the FP time, not CPU+VP+FP.
	m := New(testProfile())
	a := m.NewResource("texA")
	b := m.NewResource("texB")
	in := m.NewResource("input")
	const frames = 50
	var lastEnd timing.Time
	for i := 0; i < frames; i++ {
		tgt := a
		if i%2 == 1 {
			tgt = b
		}
		m.Clear(tgt)
		r := m.Draw(drawJob(tgt, in))
		lastEnd = r.FPEnd
	}
	perFrame := lastEnd / frames
	// FP dominates at ~1.07 ms (compute + store traffic); allow 20% slack
	// but demand it is clearly below the serialised CPU+VP+FP sum.
	fpOnly := 1070 * timing.Microsecond
	if perFrame > fpOnly*12/10 {
		t.Errorf("pipelined per-frame = %v, want ≈ %v (overlap broken)", perFrame, fpOnly)
	}
	if m.Stats.Bubbles != 0 {
		t.Errorf("independent frames produced %d bubbles", m.Stats.Bubbles)
	}
}

func TestConsecutiveDependencyBubble(t *testing.T) {
	// Frame N+1 samples what frame N wrote: every frame must serialise
	// with the flush penalty.
	prof := testProfile()
	m := New(prof)
	a := m.NewResource("texA")
	b := m.NewResource("texB")
	const frames = 20
	var lastEnd timing.Time
	cur, nxt := a, b
	for i := 0; i < frames; i++ {
		m.Clear(nxt)
		r := m.Draw(drawJob(nxt, cur))
		lastEnd = r.FPEnd
		cur, nxt = nxt, cur
	}
	if int(m.Stats.Bubbles) < frames-1 {
		t.Fatalf("bubbles = %d, want >= %d", m.Stats.Bubbles, frames-1)
	}
	perFrame := lastEnd / frames
	// Serialised: FP + flush ≈ 1.07 ms + 0.5 ms.
	want := 1570 * timing.Microsecond
	if perFrame < want*9/10 {
		t.Errorf("dependent per-frame = %v, want >= ~%v (flush not applied)", perFrame, want)
	}
}

func TestClearRemovesTargetDependencyAndTileLoad(t *testing.T) {
	m := New(testProfile())
	tgt := m.NewResource("fb")
	in := m.NewResource("input")
	// Without clear: rendering over the previous frame's output.
	var endNoClear timing.Time
	for i := 0; i < 10; i++ {
		r := m.Draw(drawJob(tgt, in))
		endNoClear = r.FPEnd
	}
	loads := m.Stats.TileLoads
	bubbles := m.Stats.Bubbles
	if loads == 0 {
		t.Error("preserved target did not load tiles")
	}
	if bubbles == 0 {
		t.Error("rendering over previous output did not serialise")
	}
	// With clear: no loads, no bubbles.
	m2 := New(testProfile())
	tgt2 := m2.NewResource("fb")
	in2 := m2.NewResource("input")
	var endClear timing.Time
	for i := 0; i < 10; i++ {
		m2.Clear(tgt2)
		r := m2.Draw(drawJob(tgt2, in2))
		endClear = r.FPEnd
	}
	if m2.Stats.TileLoads != 0 {
		t.Errorf("cleared target loaded %d tiles", m2.Stats.TileLoads)
	}
	if m2.Stats.Bubbles != 0 {
		t.Errorf("cleared target produced %d bubbles", m2.Stats.Bubbles)
	}
	if endClear >= endNoClear {
		t.Errorf("clear did not speed up: %v vs %v", endClear, endNoClear)
	}
}

func TestCopyStreamsBehindLongRender(t *testing.T) {
	// A copy from a long render pass into fresh storage finishes just
	// after the pass; into reused storage it starts only after the pass.
	prof := testProfile()
	m := New(prof)
	fb := m.NewResource("fb")
	fresh := m.NewResource("texFresh")
	m.Clear(fb)
	job := drawJob(fb)
	job.FragCycles = 50_000_000 // 50 ms pass
	r := m.Draw(job)
	m.Copy(fb, fresh, 1<<20, false) // 1 MB ≈ 1 ms on the copy engine
	freshReady := m.ReadyAt(fresh)
	tail := prof.CopyEngine.Latency
	if freshReady > r.FPEnd+tail+100*timing.Microsecond {
		t.Errorf("streamed copy ready at %v, want ≈ FP end %v", freshReady, r.FPEnd)
	}

	m2 := New(prof)
	fb2 := m2.NewResource("fb")
	reused := m2.NewResource("texReused")
	m2.Clear(fb2)
	r2 := m2.Draw(job)
	m2.Copy(fb2, reused, 1<<20, true)
	reusedReady := m2.ReadyAt(reused)
	fullCopy := prof.CopyEngine.TransferTime(1 << 20)
	if reusedReady < r2.FPEnd+fullCopy {
		t.Errorf("overwrite copy ready at %v, want >= FP end %v + copy %v", reusedReady, r2.FPEnd, fullCopy)
	}
}

func TestCopyWARBlocksNextDrawToSource(t *testing.T) {
	// While the copy reads the framebuffer, the next draw to it must wait
	// (paper: GPU operations modifying the framebuffer serialise until the
	// transfer completes).
	prof := testProfile()
	prof.CopyEngine = mem.Bus{BytesPerSecond: 100e6} // slow: 10 ms/MB
	m := New(prof)
	fb := m.NewResource("fb")
	tex := m.NewResource("tex")
	m.Clear(fb)
	m.Draw(drawJob(fb))
	m.Copy(fb, tex, 1<<20, false)
	copyEnd := m.ReadyAt(tex)
	m.Clear(fb)
	r := m.Draw(drawJob(fb))
	if r.FPStart < copyEnd {
		t.Errorf("draw started at %v while copy reads framebuffer until %v", r.FPStart, copyEnd)
	}
	if m.Stats.WARStalls == 0 {
		t.Error("WAR stall not recorded")
	}
}

func TestUploadWAROverwrite(t *testing.T) {
	prof := testProfile()
	m := New(prof)
	tex := m.NewResource("input")
	tgt := m.NewResource("out")
	m.Upload(tex, 1<<20, false)
	m.Clear(tgt)
	job := drawJob(tgt, tex)
	job.FragCycles = 10_000_000 // 10 ms pass: reads tex until FPEnd
	r := m.Draw(job)
	// Fresh upload (into different storage) proceeds while the GPU reads
	// tex.
	tex2 := m.NewResource("input2")
	m.Upload(tex2, 1<<20, false)
	if got := m.ReadyAt(tex2); got >= r.FPEnd {
		t.Errorf("fresh upload waited for unrelated reader: ready %v >= %v", got, r.FPEnd)
	}
	// Overwriting upload must wait for the reader.
	m.Upload(tex, 1<<20, true)
	if got := m.ReadyAt(tex); got < r.FPEnd {
		t.Errorf("overwriting upload ready at %v, want >= reader end %v", got, r.FPEnd)
	}
}

func TestUploadAsyncVsSync(t *testing.T) {
	prof := testProfile()
	prof.UploadAsync = false
	m := New(prof)
	tex := m.NewResource("t")
	before := m.Now()
	m.Upload(tex, 8<<20, false) // 8 MB ≈ 8 ms
	syncCost := m.Now() - before

	prof2 := testProfile()
	prof2.UploadAsync = true
	m2 := New(prof2)
	tex2 := m2.NewResource("t")
	before2 := m2.Now()
	m2.Upload(tex2, 8<<20, false)
	asyncCost := m2.Now() - before2

	if asyncCost >= syncCost/4 {
		t.Errorf("async upload CPU cost %v not far below sync %v", asyncCost, syncCost)
	}
	if m2.ReadyAt(tex2) < m2.Prof.UploadBus.TransferTime(8<<20) {
		t.Error("async upload data ready too early")
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	// With queue depth 2, the CPU cannot run more than ~2 frames ahead.
	m := New(testProfile())
	tgt := m.NewResource("t")
	in := m.NewResource("in")
	var last DrawResult
	for i := 0; i < 10; i++ {
		m.Clear(tgt)
		last = m.Draw(drawJob(tgt, in))
	}
	ahead := last.FPEnd - m.Now()
	// At most ~2 frames of FP work ahead.
	if ahead > 3*1100*timing.Microsecond {
		t.Errorf("CPU ran %v ahead of GPU with queue depth 2", ahead)
	}
}

func TestNonDeferredSerializes(t *testing.T) {
	prof := testProfile()
	prof.Deferred = false
	m := New(prof)
	tgt := m.NewResource("t")
	in := m.NewResource("in")
	for i := 0; i < 5; i++ {
		m.Clear(tgt)
		r := m.Draw(drawJob(tgt, in))
		if m.Now() < r.FPEnd {
			t.Fatal("non-deferred mode did not wait for frame completion")
		}
	}
}

func TestWaitAllAndReadback(t *testing.T) {
	m := New(testProfile())
	tgt := m.NewResource("t")
	m.Clear(tgt)
	r := m.Draw(drawJob(tgt))
	if m.Now() >= r.FPEnd {
		t.Fatal("draw should be asynchronous")
	}
	m.Readback(tgt, 1<<20)
	if m.Now() < r.FPEnd {
		t.Error("readback did not drain the pipeline")
	}
	if m.Now() < r.FPEnd+m.Prof.UploadBus.TransferTime(1<<20) {
		t.Error("readback did not pay the copy cost")
	}
}

func TestFP24StoreBytesReduceMemoryTime(t *testing.T) {
	// 3-byte output (fp24 kernels) must yield shorter FP than 4-byte for a
	// memory-bound job.
	prof := testProfile()
	prof.MemBus = mem.Bus{BytesPerSecond: 200e6} // slow memory
	run := func(bpp int) timing.Time {
		m := New(prof)
		tgt := m.NewResource("t")
		m.Clear(tgt)
		job := drawJob(tgt)
		job.FragCycles = 1000 // negligible compute
		job.BytesPerPixelOut = bpp
		r := m.Draw(job)
		return r.FPEnd - r.FPStart
	}
	t4, t3 := run(4), run(3)
	if t3 >= t4 {
		t.Errorf("3-byte store FP %v not below 4-byte %v", t3, t4)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	m := New(testProfile())
	tgt := m.NewResource("t")
	m.Clear(tgt)
	m.Draw(drawJob(tgt))
	m.WaitAll()
	m.Reset()
	if m.Now() != 0 || m.Stats.Draws != 0 || m.ReadyAt(tgt) != 0 {
		t.Error("Reset did not clear machine state")
	}
}

func TestTraceRecordsPipelineSpans(t *testing.T) {
	m := New(testProfile())
	m.Trace.Enable(true)
	tgt := m.NewResource("fb")
	tex := m.NewResource("tex")
	in := m.NewResource("in")
	m.Upload(in, 1<<16, false)
	m.Clear(tgt)
	m.Draw(drawJob(tgt, in))
	m.Copy(tgt, tex, 1<<16, false)
	kinds := map[string]bool{}
	for _, e := range m.Trace.Events() {
		kinds[e.Resource] = true
		if e.End < e.Start {
			t.Errorf("span %q ends before it starts", e.Name)
		}
	}
	for _, want := range []string{"fp", "copy"} {
		if !kinds[want] {
			t.Errorf("no %q spans recorded: %v", want, kinds)
		}
	}
}

func TestMarkReadWrite(t *testing.T) {
	m := New(testProfile())
	r := m.NewResource("x")
	m.MarkWritten(r, 100)
	if m.ReadyAt(r) != 100 {
		t.Errorf("ReadyAt = %v", m.ReadyAt(r))
	}
	m.MarkRead(r, 250)
	// Overwriting upload must respect the reader.
	m.Upload(r, 1, true)
	if got := m.ReadyAt(r); got < 250 {
		t.Errorf("upload ignored MarkRead: ready %v", got)
	}
	// Earlier marks never move times backwards.
	m.MarkWritten(r, 10)
	if m.ReadyAt(r) < 250 {
		t.Error("MarkWritten moved readiness backwards")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := New(testProfile())
	tgt := m.NewResource("t")
	in := m.NewResource("in")
	m.Upload(in, 4096, false)
	m.Clear(tgt)
	m.Draw(drawJob(tgt, in))
	m.Copy(tgt, m.NewResource("d"), 4096, false)
	st := m.Stats
	if st.Draws != 1 || st.UploadOps != 1 || st.CopyOps != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.UploadBytes != 4096 || st.CopyBytes != 4096 {
		t.Errorf("byte counters = %d/%d", st.UploadBytes, st.CopyBytes)
	}
	if st.FragmentsShaded != 256*256 {
		t.Errorf("fragments = %d", st.FragmentsShaded)
	}
	if m.FPBusy() <= 0 {
		t.Error("FP busy time missing")
	}
	if m.CopyBusy() <= 0 {
		t.Error("copy busy time missing")
	}
}

func TestVsyncClockMatchesProfile(t *testing.T) {
	m := New(device.VideoCoreIV())
	period := m.VSyncClock.Period()
	want := timing.FromSeconds(1.0 / 60)
	diff := period - want
	if diff < 0 {
		diff = -diff
	}
	if diff > timing.Microsecond {
		t.Errorf("vsync period = %v, want ~%v", period, want)
	}
}
