// Package gpu models the execution timing of a tile-based deferred
// rendering (TBDR) GPU and its driver: render-job scheduling with frame
// overlap, dependency-induced pipeline bubbles, tile load/store traffic,
// asynchronous copy engines and host uploads.
//
// The model is deliberately queue-theoretic rather than cycle-accurate:
// work is scheduled on busy-until resource timelines (internal/timing), so
// simulating 10 000 kernel launches costs 10 000 scheduling operations, not
// 10 000 simulated frames of per-pixel work. Functional execution (what the
// pixels actually compute) lives in internal/gles and runs once per draw;
// this package only decides *when* things happen.
//
// The mechanisms below are the ones the paper identifies (§II):
//
//   - Deferred overlap: the fragment pass of frame N runs while frame N+1
//     is submitted and binned. Throughput in steady state is the maximum of
//     the stage times, not their sum.
//   - Bubbles: when frame N+1 reads a resource the immediately-preceding
//     frame wrote, the driver must flush, serialising the two frames and
//     adding FlushCost.
//   - Tile traffic: unless the target was cleared/discarded, every covered
//     tile is read back from memory before shading (paper Fig. 1 step 6)
//     and written back after (step 3/5).
//   - Copy engines: framebuffer→texture copies wait for rendering to
//     complete (implicit synchronisation), then run on a DMA engine
//     (VideoCore) or a slow blocking path (SGX).
//   - Write-after-read hazards: overwriting a resource still being read
//     (texture reuse, framebuffer reuse during an in-flight copy) stalls —
//     the paper's "false sharing" (§V-B, Fig. 5b).
package gpu

import (
	"fmt"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/mem"
	"gles2gpgpu/internal/timing"
)

// ResID identifies a schedulable memory resource (texture storage, a
// surface buffer, a vertex buffer).
type ResID int64

// resState tracks a resource's scheduling state.
type resState struct {
	label         string
	readyAt       timing.Time // last write (render/copy/upload) completes
	writerJob     int64       // FP job id of the last writer (0 = none/not a job)
	writerFPStart timing.Time // when the producing render pass started
	lastRead      timing.Time // last read (sampling, copy source) completes
	cleared       bool        // contents invalidated: next draw skips tile load
}

// Stats accumulates observable behaviour for tests and reports.
type Stats struct {
	Draws           int64
	Bubbles         int64 // draws serialised due to consecutive-frame deps
	WARStalls       int64 // writes delayed by in-flight readers
	CopyOps         int64
	CopyBytes       int64
	UploadOps       int64
	UploadBytes     int64
	TileLoads       int64
	TileStores      int64
	FragmentsShaded int64
}

// Machine is one simulated GPU + driver instance. Not safe for concurrent
// use (the simulation is single-threaded by design).
type Machine struct {
	Prof *device.Profile
	CPU  *timing.Clock
	// VSyncClock paces the display.
	VSyncClock *timing.VSync
	Trace      *timing.Trace
	Stats      Stats

	vp      *timing.Resource
	fp      *timing.Resource
	copyEng *mem.DMA
	upEng   *mem.DMA

	nextRes   ResID
	resources map[ResID]*resState

	jobCounter  int64
	lastFPJob   int64
	lastFPEnd   timing.Time
	outstanding []timing.Time // FP completion times of in-flight frames
}

// New returns an idle machine for the given profile.
func New(prof *device.Profile) *Machine {
	return &Machine{
		Prof:       prof,
		CPU:        timing.NewClock(),
		VSyncClock: timing.NewVSync(prof.RefreshHz),
		Trace:      timing.NewTrace(1 << 16),
		vp:         timing.NewResource("vp"),
		fp:         timing.NewResource("fp"),
		copyEng:    mem.NewDMA("copy", prof.CopyEngine),
		upEng:      mem.NewDMA("upload", prof.UploadBus),
		resources:  make(map[ResID]*resState),
	}
}

// NewResource registers a schedulable resource and returns its handle.
func (m *Machine) NewResource(label string) ResID {
	m.nextRes++
	m.resources[m.nextRes] = &resState{label: label}
	return m.nextRes
}

// FreeResource forgets a resource.
func (m *Machine) FreeResource(id ResID) { delete(m.resources, id) }

func (m *Machine) res(id ResID) *resState {
	r, ok := m.resources[id]
	if !ok {
		r = &resState{label: fmt.Sprintf("res%d", id)}
		m.resources[id] = r
	}
	return r
}

// ReadyAt reports when the resource's last write completes.
func (m *Machine) ReadyAt(id ResID) timing.Time { return m.res(id).readyAt }

// writableAt reports when the resource can be overwritten: after its last
// write AND after all in-flight readers (WAR hazard).
func (m *Machine) writableAt(id ResID) timing.Time {
	r := m.res(id)
	return timing.Max(r.readyAt, r.lastRead)
}

// Clear marks a target's contents invalid: the next draw to it skips the
// tile-load readback and carries no dependency on the previous contents
// (the glClear / EXT_discard_framebuffer optimisation, paper §II).
func (m *Machine) Clear(id ResID) {
	m.CPU.Advance(m.Prof.APICallCost)
	m.res(id).cleared = true
}

// Upload models a host→GPU-memory transfer of n bytes into dst
// (glTexImage2D, glTexSubImage2D, glBufferData data phase).
//
// overwrite=true models sub-image updates into live storage: the transfer
// must wait for in-flight readers of dst (WAR). Fresh allocations pass
// false — new storage has no readers.
func (m *Machine) Upload(dst ResID, n int, overwrite bool) {
	m.CPU.Advance(m.Prof.UploadIssueCost)
	earliest := m.CPU.Now()
	if overwrite {
		w := m.writableAt(dst)
		if w > earliest {
			m.Stats.WARStalls++
			earliest = w
		}
	}
	m.Stats.UploadOps++
	m.Stats.UploadBytes += int64(n)
	if m.Prof.UploadAsync {
		start, end := m.upEng.Schedule(earliest, n)
		m.Trace.Add("upload", fmt.Sprintf("upload %dB -> %s", n, m.res(dst).label), start, end)
		r := m.res(dst)
		r.readyAt = end
		r.writerJob = 0
		return
	}
	// Synchronous: the CPU performs the copy.
	m.CPU.AdvanceTo(earliest)
	dur := m.Prof.UploadBus.TransferTime(n)
	start := m.CPU.Now()
	m.CPU.Advance(dur)
	m.Trace.Add("cpu", fmt.Sprintf("upload %dB -> %s", n, m.res(dst).label), start, m.CPU.Now())
	r := m.res(dst)
	r.readyAt = m.CPU.Now()
	r.writerJob = 0
}

// AllocCost charges the CPU for a driver allocation.
func (m *Machine) AllocCost(d timing.Time) { m.CPU.Advance(d) }

// DrawJob describes one render pass (for GPGPU: one kernel launch drawing a
// viewport-filling quad; the model supports arbitrary covered-pixel counts).
type DrawJob struct {
	Target ResID
	// TargetW/H are the render-target dimensions in pixels.
	TargetW, TargetH int
	// CoveredPixels is the number of fragments shaded.
	CoveredPixels int64
	// FragCycles is the total shader-core cycle count across all fragments.
	FragCycles int64
	// TexFetches is the total number of texture fetches issued.
	TexFetches int64
	// BytesPerPixelOut is the store footprint per covered pixel (4 for
	// RGBA8888; 3 when the fp24 kernels mask the alpha channel, the
	// paper's 25% bandwidth saving).
	BytesPerPixelOut int
	// Reads lists sampled textures.
	Reads []ResID
	// VerticesReady is when the vertex data is available (buffer uploads).
	VerticesReady timing.Time
	// VertexCount for the vertex stage.
	VertexCount int
	// ExtraCPUCost is added to the draw submission cost (client-side
	// arrays, usage-hint consistency work).
	ExtraCPUCost timing.Time
}

// DrawResult reports the scheduling outcome.
type DrawResult struct {
	VPStart, VPEnd timing.Time
	FPStart, FPEnd timing.Time
	Bubble         bool
}

// Draw schedules one render job and returns its timing.
func (m *Machine) Draw(job DrawJob) DrawResult {
	m.Stats.Draws++
	m.jobCounter++
	jobID := m.jobCounter

	// Driver submission cost, plus frame-queue backpressure: the CPU may
	// run at most QueueDepth frames ahead of the GPU.
	m.CPU.Advance(m.Prof.DrawSubmitCost + job.ExtraCPUCost)
	if depth := m.Prof.QueueDepth; depth > 0 && len(m.outstanding) >= depth {
		wait := m.outstanding[len(m.outstanding)-depth]
		m.CPU.AdvanceTo(wait)
	}

	// Vertex processing / binning.
	vpDur := m.Prof.VertexTime(job.VertexCount)
	vpStart, vpEnd := m.vp.Acquire(timing.Max(m.CPU.Now(), job.VerticesReady), vpDur)

	// Fragment-stage dependencies.
	depStart := vpEnd
	bubble := false
	for _, rid := range job.Reads {
		r := m.res(rid)
		if r.readyAt > depStart {
			depStart = r.readyAt
		}
		// Consecutive-frame dependency: the deferred pipeline cannot
		// overlap, the driver flushes (paper §II "bubbles").
		if r.writerJob != 0 && r.writerJob == m.lastFPJob {
			bubble = true
		}
	}
	target := m.res(job.Target)
	preserved := !target.cleared
	if preserved {
		// The previous contents must be loaded per tile; rendering on top
		// of the immediately-preceding frame's output is also a
		// consecutive-frame dependency.
		if target.readyAt > depStart {
			depStart = target.readyAt
		}
		if target.writerJob != 0 && target.writerJob == m.lastFPJob {
			bubble = true
		}
	}
	// WAR: the target may still be being read (e.g. an in-flight copy to
	// texture from this framebuffer — paper: "all GPU operations that
	// modify the framebuffer need to be serialised until the transfer is
	// complete").
	if target.lastRead > depStart {
		m.Stats.WARStalls++
		depStart = target.lastRead
	}
	if bubble {
		m.Stats.Bubbles++
		flushAt := m.lastFPEnd + m.Prof.FlushCost
		if flushAt > depStart {
			depStart = flushAt
		}
	}

	// Fragment-stage duration: shader compute + memory traffic.
	tiles := tilesCovered(job.TargetW, job.TargetH, m.Prof.TileW, m.Prof.TileH)
	var loadBytes int64
	if preserved {
		loadBytes = int64(job.TargetW) * int64(job.TargetH) * 4
		m.Stats.TileLoads += int64(tiles)
	}
	bpp := job.BytesPerPixelOut
	if bpp <= 0 {
		bpp = 4
	}
	storeBytes := job.CoveredPixels * int64(bpp)
	texBytes := int64(float64(job.TexFetches) * m.Prof.TexBytesPerFetch)
	m.Stats.TileStores += int64(tiles)
	m.Stats.FragmentsShaded += job.CoveredPixels

	// Compute and memory streams overlap in the tile engine; the pass is
	// bound by whichever dominates.
	compute := m.Prof.FragCyclesToTime(job.FragCycles)
	memTime := m.Prof.MemBus.TransferTime(int(loadBytes + storeBytes + texBytes))
	fpDur := timing.Max(compute, memTime)

	fpStart, fpEnd := m.fp.Acquire(timing.Max(depStart, m.lastFPEnd), fpDur)
	m.Trace.Add("fp", fmt.Sprintf("draw#%d -> %s", jobID, target.label), fpStart, fpEnd)

	// Bookkeeping.
	for _, rid := range job.Reads {
		r := m.res(rid)
		if fpEnd > r.lastRead {
			r.lastRead = fpEnd
		}
	}
	target.readyAt = fpEnd
	target.writerJob = jobID
	target.writerFPStart = fpStart
	target.cleared = false
	m.lastFPJob = jobID
	m.lastFPEnd = fpEnd
	m.outstanding = append(m.outstanding, fpEnd)
	if len(m.outstanding) > 64 {
		m.outstanding = append(m.outstanding[:0], m.outstanding[len(m.outstanding)-8:]...)
	}

	if !m.Prof.Deferred {
		// Immediate-mode ablation: the CPU waits for each frame.
		m.CPU.AdvanceTo(fpEnd)
	}
	return DrawResult{VPStart: vpStart, VPEnd: vpEnd, FPStart: fpStart, FPEnd: fpEnd, Bubble: bubble}
}

func tilesCovered(w, h, tw, th int) int {
	if tw <= 0 || th <= 0 {
		return 1
	}
	tx := (w + tw - 1) / tw
	ty := (h + th - 1) / th
	if tx < 1 {
		tx = 1
	}
	if ty < 1 {
		ty = 1
	}
	return tx * ty
}

// Copy models glCopyTexImage2D / glCopyTexSubImage2D: src (a framebuffer
// attachment) is transferred into dst texture storage.
//
// Into fresh storage (overwrite=false) the copy engine *streams behind the
// renderer*: a tile-based GPU finishes tiles progressively and the engine
// transfers completed tiles while later ones are still shading, so a copy
// behind a long render pass costs almost nothing extra (paper §V-B: the
// DMA controller "offloads the overhead of the copy … hiding its latency";
// Fig. 4b: "the copy to texture memory can be efficiently overlapped with
// computation"). The transfer can still not *finish* before rendering does.
//
// Into reused storage (overwrite=true, the Sub-image path) the driver must
// both wait for in-flight readers of dst (write-after-read false sharing,
// Fig. 5b) and forgo streaming — it cannot risk scribbling over storage the
// GPU may still reference, so the transfer starts only after rendering
// fully completes.
//
// A copy transfers data but carries no shader work, so it does not count as
// a "previous frame" for the deferred pipeline's bubble detection: waiting
// for a copy is already priced by readyAt.
func (m *Machine) Copy(src, dst ResID, n int, overwrite bool) {
	m.CPU.Advance(m.Prof.APICallCost)
	s := m.res(src)
	earliest := m.CPU.Now()
	if overwrite {
		if w := m.writableAt(dst); w > earliest {
			m.Stats.WARStalls++
			earliest = w
		}
		if m.Prof.CopyStreamsOnOverwrite {
			// A true DMA engine synchronises with the renderer and can
			// stream into live storage (VideoCore IV).
			earliest = timing.Max(earliest, s.writerFPStart)
		} else {
			// The blit path cannot risk scribbling over storage the GPU
			// may still reference: wait for the full render (SGX — the
			// paper's false sharing, Fig. 5b).
			earliest = timing.Max(earliest, s.readyAt)
		}
	} else {
		// Stream behind the producing pass.
		earliest = timing.Max(earliest, s.writerFPStart)
	}
	m.Stats.CopyOps++
	m.Stats.CopyBytes += int64(n)
	dur := m.Prof.CopyEngine.TransferTime(n)
	// The last tile cannot transfer before it is rendered: extend the
	// occupancy so the copy never completes before the source does.
	if earliest+dur < s.readyAt+m.Prof.CopyEngine.Latency {
		dur = s.readyAt + m.Prof.CopyEngine.Latency - earliest
	}
	start, end := m.copyEng.ScheduleDuration(earliest, dur)
	m.Trace.Add("copy", fmt.Sprintf("copy %dB %s->%s", n, s.label, m.res(dst).label), start, end)
	if m.Prof.CopyBlocksCPU {
		m.CPU.AdvanceTo(end)
	}
	if end > s.lastRead {
		s.lastRead = end
	}
	d := m.res(dst)
	d.readyAt = end
	d.writerJob = 0
}

// WaitFor blocks the CPU until the resource's last write completes
// (glFinish on a single target, the implicit wait in eglSwapBuffers).
func (m *Machine) WaitFor(id ResID) {
	m.CPU.AdvanceTo(m.res(id).readyAt)
}

// WaitAll drains the whole pipeline (glFinish / glReadPixels semantics).
func (m *Machine) WaitAll() {
	t := m.CPU.Now()
	t = timing.Max(t, m.fp.FreeAt())
	t = timing.Max(t, m.vp.FreeAt())
	t = timing.Max(t, m.copyEng.FreeAt())
	t = timing.Max(t, m.upEng.FreeAt())
	m.CPU.AdvanceTo(t)
	m.outstanding = m.outstanding[:0]
}

// Readback models glReadPixels: drain, then a synchronous CPU copy.
func (m *Machine) Readback(src ResID, n int) {
	m.WaitFor(src)
	m.WaitAll() // GLES2 ReadPixels implies a full finish on these drivers
	start := m.CPU.Now()
	m.CPU.Advance(m.Prof.UploadBus.TransferTime(n))
	m.Trace.Add("cpu", fmt.Sprintf("readpixels %dB", n), start, m.CPU.Now())
	r := m.res(src)
	if m.CPU.Now() > r.lastRead {
		r.lastRead = m.CPU.Now()
	}
}

// MarkRead records an external read of a resource completing at t (used by
// the functional layer when it consumes data outside Draw/Copy paths).
func (m *Machine) MarkRead(id ResID, t timing.Time) {
	r := m.res(id)
	if t > r.lastRead {
		r.lastRead = t
	}
}

// MarkWritten records an external write completing at t.
func (m *Machine) MarkWritten(id ResID, t timing.Time) {
	r := m.res(id)
	if t > r.readyAt {
		r.readyAt = t
	}
	r.writerJob = 0
}

// Now returns the CPU clock reading.
func (m *Machine) Now() timing.Time { return m.CPU.Now() }

// FPBusy reports accumulated fragment-engine busy time (for utilisation
// reports and ablation benches).
func (m *Machine) FPBusy() timing.Time { return m.fp.BusyTotal() }

// CopyBusy reports accumulated copy-engine busy time.
func (m *Machine) CopyBusy() timing.Time { return m.copyEng.BusyTotal() }

// Reset returns the machine to time zero, keeping registered resources but
// clearing their scheduling state.
func (m *Machine) Reset() {
	m.CPU.Reset()
	m.vp.Reset()
	m.fp.Reset()
	m.copyEng.Reset()
	m.upEng.Reset()
	m.Trace.Reset()
	m.Stats = Stats{}
	m.jobCounter = 0
	m.lastFPJob = 0
	m.lastFPEnd = 0
	m.outstanding = m.outstanding[:0]
	for _, r := range m.resources {
		r.readyAt, r.writerJob, r.lastRead, r.cleared = 0, 0, 0, false
	}
}
