package mem

import (
	"testing"
	"testing/quick"

	"gles2gpgpu/internal/timing"
)

func TestBusTransferTime(t *testing.T) {
	b := Bus{BytesPerSecond: 1e9, Latency: 5 * timing.Microsecond}
	// 1 GB/s => 1 MB takes 1 ms (+ latency).
	got := b.TransferTime(1 << 20)
	want := 5*timing.Microsecond + timing.FromSeconds(float64(1<<20)/1e9)
	if got != want {
		t.Errorf("TransferTime(1MiB) = %v, want %v", got, want)
	}
	if got := b.TransferTime(0); got != b.Latency {
		t.Errorf("TransferTime(0) = %v, want latency %v", got, b.Latency)
	}
	if got := b.TransferTime(-7); got != b.Latency {
		t.Errorf("TransferTime(-7) = %v, want latency", got)
	}
	// Infinite bandwidth: latency only.
	inf := Bus{Latency: 3}
	if got := inf.TransferTime(1 << 30); got != 3 {
		t.Errorf("infinite bus TransferTime = %v, want 3", got)
	}
	// Real data on a real bus never takes literally zero extra time.
	tiny := Bus{BytesPerSecond: 1e18}
	if got := tiny.TransferTime(1); got <= 0 {
		t.Errorf("1-byte transfer = %v, want > 0", got)
	}
}

func TestBusMonotoneProperty(t *testing.T) {
	b := Bus{BytesPerSecond: 2.5e8, Latency: timing.Nanosecond}
	f := func(a, c uint32) bool {
		x, y := int(a%(1<<24)), int(c%(1<<24))
		if x > y {
			x, y = y, x
		}
		return b.TransferTime(x) <= b.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocModel(t *testing.T) {
	m := AllocModel{Fixed: 10 * timing.Microsecond, PerByte: 100 * timing.Nanosecond}
	if got := m.AllocTime(0); got != 10*timing.Microsecond {
		t.Errorf("AllocTime(0) = %v", got)
	}
	// 8 KiB = 2 pages worth of per-byte cost.
	want := 10*timing.Microsecond + 2*100*timing.Nanosecond
	if got := m.AllocTime(8192); got != want {
		t.Errorf("AllocTime(8KiB) = %v, want %v", got, want)
	}
	if got := m.AllocTime(-1); got != m.Fixed {
		t.Errorf("AllocTime(-1) = %v, want fixed", got)
	}
}

func TestAllocatorLifecycle(t *testing.T) {
	al := NewAllocator(AllocModel{Fixed: 1})
	a, cost := al.Alloc(100, "texA")
	if cost != 1 {
		t.Errorf("alloc cost = %v, want 1", cost)
	}
	b, _ := al.Alloc(50, "texB")
	if al.LiveBytes() != 150 || al.LiveCount() != 2 {
		t.Fatalf("live = %d bytes / %d allocs, want 150/2", al.LiveBytes(), al.LiveCount())
	}
	if al.PeakLiveBytes != 150 {
		t.Errorf("peak = %d, want 150", al.PeakLiveBytes)
	}
	if err := al.Free(a); err != nil {
		t.Fatal(err)
	}
	if al.LiveBytes() != 50 {
		t.Errorf("live after free = %d, want 50", al.LiveBytes())
	}
	// Double free is an error.
	if err := al.Free(a); err == nil {
		t.Error("double free not rejected")
	}
	if err := al.Free(b); err != nil {
		t.Fatal(err)
	}
	if al.TotalAllocs != 2 || al.TotalFrees != 2 || al.TotalBytes != 150 {
		t.Errorf("stats = %d/%d/%d", al.TotalAllocs, al.TotalFrees, al.TotalBytes)
	}
	al.ResetStats()
	if al.TotalAllocs != 0 || al.PeakLiveBytes != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestDMASerializesTransfers(t *testing.T) {
	d := NewDMA("dma", Bus{BytesPerSecond: 1e9})
	oneMB := 1 << 20
	dur := Bus{BytesPerSecond: 1e9}.TransferTime(oneMB)
	s1, e1 := d.Schedule(0, oneMB)
	if s1 != 0 || e1 != dur {
		t.Fatalf("first transfer [%v,%v], want [0,%v]", s1, e1, dur)
	}
	// Second transfer requested mid-flight queues behind the first.
	s2, e2 := d.Schedule(dur/2, oneMB)
	if s2 != e1 || e2 != e1+dur {
		t.Fatalf("second transfer [%v,%v], want [%v,%v]", s2, e2, e1, e1+dur)
	}
	if d.FreeAt() != e2 {
		t.Errorf("FreeAt = %v, want %v", d.FreeAt(), e2)
	}
	if d.BusyTotal() != 2*dur {
		t.Errorf("BusyTotal = %v, want %v", d.BusyTotal(), 2*dur)
	}
	d.Reset()
	if d.FreeAt() != 0 {
		t.Error("Reset did not idle the engine")
	}
}
