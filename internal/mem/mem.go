// Package mem models the memory system of an embedded SoC as seen by the
// GPU driver: transfer costs over the shared main-memory bus, the cost of
// allocating GPU-managed memory inside the driver, and DMA engines that can
// move data asynchronously.
//
// On the platforms the paper targets, CPU and GPU share one physical memory,
// yet the OpenGL ES 2 API still mandates implicit copies into GPU-managed
// allocations (paper §II, "Vertex Processing" and "Texture Loading"). The
// cost models here make those copies and allocations visible in virtual
// time, which is what several of the paper's optimisations eliminate.
package mem

import (
	"fmt"

	"gles2gpgpu/internal/timing"
)

// Bus models a bandwidth-limited transfer path (main memory bus, a blocking
// copy path, or the link a DMA engine drives).
type Bus struct {
	// BytesPerSecond is the sustained bandwidth. Zero means infinitely
	// fast (transfers cost only Latency).
	BytesPerSecond float64
	// Latency is the fixed per-transfer setup cost.
	Latency timing.Time
}

// TransferTime returns the virtual time needed to move n bytes.
func (b Bus) TransferTime(n int) timing.Time {
	if n < 0 {
		n = 0
	}
	t := b.Latency
	if b.BytesPerSecond > 0 && n > 0 {
		t += timing.FromSeconds(float64(n) / b.BytesPerSecond)
		if t <= b.Latency {
			t = b.Latency + 1 // transfers of real data never take zero time
		}
	}
	return t
}

// AllocModel is the driver-side cost of creating a GPU-managed allocation:
// page-table and cache maintenance plus a per-byte component (zeroing,
// mapping).
type AllocModel struct {
	Fixed   timing.Time
	PerByte timing.Time // cost per 4 KiB page, spread per byte below
}

// AllocTime returns the driver time to allocate n bytes of GPU memory.
func (a AllocModel) AllocTime(n int) timing.Time {
	if n < 0 {
		n = 0
	}
	return a.Fixed + timing.Time(int64(a.PerByte)*int64(n)/4096)
}

// Allocation is one live GPU-managed region, tracked so tests and reports
// can observe the memory behaviour the paper reasons about (e.g. texture
// reuse eliminating allocations).
type Allocation struct {
	ID    int
	Size  int
	Label string
}

// Allocator tracks GPU-managed memory. It is a bookkeeping device, not an
// address-space manager: the functional data lives in Go slices owned by the
// GLES layer.
type Allocator struct {
	model    AllocModel
	nextID   int
	live     map[int]Allocation
	liveSize int

	// Statistics since construction or the last ResetStats.
	TotalAllocs   int64
	TotalFrees    int64
	TotalBytes    int64
	PeakLiveBytes int
	// SubUpdates/SubUpdateBytes count in-place writes into live
	// allocations (glTexSubImage2D / glCopyTexSubImage2D) — each one is a
	// reallocation the paper's Fig. 5 reuse optimisation avoided, so
	// SubUpdates/(SubUpdates+TotalAllocs) is the storage-reuse rate.
	SubUpdates     int64
	SubUpdateBytes int64
}

// NewAllocator returns an empty allocator using the given cost model.
func NewAllocator(model AllocModel) *Allocator {
	return &Allocator{model: model, live: make(map[int]Allocation)}
}

// Alloc records a new allocation of n bytes and returns its handle and the
// driver time the allocation costs.
func (al *Allocator) Alloc(n int, label string) (Allocation, timing.Time) {
	if n < 0 {
		n = 0
	}
	al.nextID++
	a := Allocation{ID: al.nextID, Size: n, Label: label}
	al.live[a.ID] = a
	al.liveSize += n
	al.TotalAllocs++
	al.TotalBytes += int64(n)
	if al.liveSize > al.PeakLiveBytes {
		al.PeakLiveBytes = al.liveSize
	}
	return a, al.model.AllocTime(n)
}

// Free releases a live allocation. Freeing an unknown handle is an error so
// that resource-lifetime bugs in the GLES layer surface in tests.
func (al *Allocator) Free(a Allocation) error {
	got, ok := al.live[a.ID]
	if !ok {
		return fmt.Errorf("mem: free of unknown allocation id %d (%q)", a.ID, a.Label)
	}
	delete(al.live, a.ID)
	al.liveSize -= got.Size
	al.TotalFrees++
	return nil
}

// NoteSubUpdate records an in-place update of n bytes into a live
// allocation (the reuse path that skips Alloc entirely).
func (al *Allocator) NoteSubUpdate(n int) {
	if n < 0 {
		n = 0
	}
	al.SubUpdates++
	al.SubUpdateBytes += int64(n)
}

// LiveBytes reports the currently allocated GPU-managed bytes.
func (al *Allocator) LiveBytes() int { return al.liveSize }

// LiveCount reports the number of live allocations.
func (al *Allocator) LiveCount() int { return len(al.live) }

// ResetStats zeroes the counters but keeps live allocations.
func (al *Allocator) ResetStats() {
	al.TotalAllocs, al.TotalFrees, al.TotalBytes = 0, 0, 0
	al.SubUpdates, al.SubUpdateBytes = 0, 0
	al.PeakLiveBytes = al.liveSize
}

// DMA is an asynchronous copy engine: transfers are scheduled on its own
// resource timeline and overlap with CPU and GPU work. The VideoCore IV
// driver uses one to offload framebuffer-to-texture copies at ~1 GB/s
// (paper §V-B); the SGX copy path has none and blocks.
type DMA struct {
	bus Bus
	res *timing.Resource
}

// NewDMA returns a DMA engine driving the given bus.
func NewDMA(name string, bus Bus) *DMA {
	return &DMA{bus: bus, res: timing.NewResource(name)}
}

// Schedule queues a transfer of n bytes that may not start before earliest
// and returns its start and completion times.
func (d *DMA) Schedule(earliest timing.Time, n int) (start, end timing.Time) {
	return d.res.Acquire(earliest, d.bus.TransferTime(n))
}

// ScheduleDuration queues an occupancy of an explicit duration (used when
// the caller stretches a transfer to cover an external constraint, e.g. a
// copy that streams behind a renderer and cannot finish before it).
func (d *DMA) ScheduleDuration(earliest, dur timing.Time) (start, end timing.Time) {
	return d.res.Acquire(earliest, dur)
}

// TransferTime exposes the engine's bus timing.
func (d *DMA) TransferTime(n int) timing.Time { return d.bus.TransferTime(n) }

// FreeAt reports when the engine next becomes idle.
func (d *DMA) FreeAt() timing.Time { return d.res.FreeAt() }

// BusyTotal reports accumulated transfer time.
func (d *DMA) BusyTotal() timing.Time { return d.res.BusyTotal() }

// Reset returns the engine to idle at time zero.
func (d *DMA) Reset() { d.res.Reset() }
