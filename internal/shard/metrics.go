package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// routerMetrics aggregates the router's counters. Probes into router
// state (healthy count, in-flight, per-replica p99 scrapes) happen at
// render time, outside this mutex.
type routerMetrics struct {
	mu sync.Mutex

	routedTotal  map[string]int64 // by replica
	status       map[int]int64    // terminal backend status classes observed
	retries      map[string]int64 // by reason
	rejected     map[string]int64 // by reason
	failedJobs   int64            // retry budget exhausted
	ejections    int64
	readmissions int64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		routedTotal: map[string]int64{},
		status:      map[int]int64{},
		retries:     map[string]int64{},
		rejected:    map[string]int64{},
	}
}

func (m *routerMetrics) routed(replica string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routedTotal[replica]++
	m.status[status]++
}

func reasonOf(err error) string {
	switch {
	case errors.Is(err, ErrBusy):
		return "window_full"
	case errors.Is(err, ErrNoReplicas):
		return "no_healthy_replica"
	default:
		return "transport"
	}
}

func (m *routerMetrics) retry(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries[reasonOf(err)]++
}

func (m *routerMetrics) rejectLocked(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[reasonOf(err)]++
}

func (m *routerMetrics) exhausted(error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failedJobs++
}

// Ejections returns the lifetime ejection count (tests and the chaos
// bench assert on it).
func (rt *Router) Ejections() int64 {
	rt.metrics.mu.Lock()
	defer rt.metrics.mu.Unlock()
	return rt.metrics.ejections
}

// Readmissions returns the lifetime readmission count.
func (rt *Router) Readmissions() int64 {
	rt.metrics.mu.Lock()
	defer rt.metrics.mu.Unlock()
	return rt.metrics.readmissions
}

// Retries returns the lifetime retry count summed over reasons.
func (rt *Router) Retries() int64 {
	rt.metrics.mu.Lock()
	defer rt.metrics.mu.Unlock()
	var n int64
	for _, v := range rt.metrics.retries {
		n += v
	}
	return n
}

// RoutedTotals returns jobs routed per replica.
func (rt *Router) RoutedTotals() map[string]int64 {
	rt.metrics.mu.Lock()
	defer rt.metrics.mu.Unlock()
	out := make(map[string]int64, len(rt.metrics.routedTotal))
	for k, v := range rt.metrics.routedTotal {
		out[k] = v
	}
	return out
}

// WritePrometheus renders the router's metrics in the Prometheus text
// exposition format (version 0.0.4), including per-replica p99 host
// latency gauges scraped live from each healthy backend's /metrics.
func (rt *Router) WritePrometheus(w io.Writer) error {
	// Probe router state and scrape backends before taking the counter
	// mutex (scrapes do network I/O).
	states := rt.Replicas()
	p99 := map[string]float64{}
	for _, st := range states {
		if !st.Healthy {
			continue
		}
		if v, ok := rt.scrapeReplicaP99(st.Replica); ok {
			p99[st.Replica] = v
		}
	}

	m := rt.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	appendf := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	healthy := 0
	for _, st := range states {
		if st.Healthy && !st.Draining {
			healthy++
		}
	}
	appendf("# HELP gles2gpgpu_router_replicas_healthy Replicas currently in ring rotation.\n# TYPE gles2gpgpu_router_replicas_healthy gauge\n")
	appendf("gles2gpgpu_router_replicas_healthy %d\n", healthy)

	appendf("# HELP gles2gpgpu_router_jobs_routed_total Jobs forwarded to a replica that returned a terminal response.\n# TYPE gles2gpgpu_router_jobs_routed_total counter\n")
	for _, k := range sortedKeys(m.routedTotal) {
		appendf("gles2gpgpu_router_jobs_routed_total{replica=%q} %d\n", k, m.routedTotal[k])
	}
	appendf("# HELP gles2gpgpu_router_retries_total Forward attempts retried on another replica.\n# TYPE gles2gpgpu_router_retries_total counter\n")
	for _, k := range sortedKeys(m.retries) {
		appendf("gles2gpgpu_router_retries_total{reason=%q} %d\n", k, m.retries[k])
	}
	appendf("# HELP gles2gpgpu_router_rejected_total Jobs shed at the router (admission or no healthy replica).\n# TYPE gles2gpgpu_router_rejected_total counter\n")
	for _, k := range sortedKeys(m.rejected) {
		appendf("gles2gpgpu_router_rejected_total{reason=%q} %d\n", k, m.rejected[k])
	}
	appendf("# HELP gles2gpgpu_router_jobs_failed_total Jobs that exhausted their retry budget.\n# TYPE gles2gpgpu_router_jobs_failed_total counter\n")
	appendf("gles2gpgpu_router_jobs_failed_total %d\n", m.failedJobs)
	appendf("# HELP gles2gpgpu_router_ejections_total Replicas ejected from the ring after consecutive failures.\n# TYPE gles2gpgpu_router_ejections_total counter\n")
	appendf("gles2gpgpu_router_ejections_total %d\n", m.ejections)
	appendf("# HELP gles2gpgpu_router_readmissions_total Ejected replicas readmitted after a healthy probe.\n# TYPE gles2gpgpu_router_readmissions_total counter\n")
	appendf("gles2gpgpu_router_readmissions_total %d\n", m.readmissions)

	appendf("# HELP gles2gpgpu_router_replica_inflight Jobs currently forwarded to a replica.\n# TYPE gles2gpgpu_router_replica_inflight gauge\n")
	for _, st := range states {
		appendf("gles2gpgpu_router_replica_inflight{replica=%q} %d\n", st.Replica, st.InFlight)
	}
	appendf("# HELP gles2gpgpu_router_replica_healthy Whether a replica is in ring rotation.\n# TYPE gles2gpgpu_router_replica_healthy gauge\n")
	for _, st := range states {
		up := 0
		if st.Healthy && !st.Draining {
			up = 1
		}
		appendf("gles2gpgpu_router_replica_healthy{replica=%q} %d\n", st.Replica, up)
	}
	appendf("# HELP gles2gpgpu_router_replica_p99_seconds Backend p99 host job latency, scraped from the replica's own /metrics histogram.\n# TYPE gles2gpgpu_router_replica_p99_seconds gauge\n")
	reps := make([]string, 0, len(p99))
	for k := range p99 {
		reps = append(reps, k)
	}
	sort.Strings(reps)
	for _, k := range reps {
		appendf("gles2gpgpu_router_replica_p99_seconds{replica=%q} %g\n", k, p99[k])
	}

	_, err := w.Write(b)
	return err
}

// scrapeReplicaP99 fetches one backend's /metrics and estimates the p99
// of its host-clock job latency histogram.
func (rt *Router) scrapeReplicaP99(name string) (float64, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/metrics", nil)
	if err != nil {
		return 0, false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, false
	}
	return histogramQuantile(string(data), "gles2gpgpud_job_latency_seconds_bucket", `clock="host"`, 0.99)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
