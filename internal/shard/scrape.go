package shard

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// histogramQuantile estimates quantile q of a Prometheus text-format
// histogram, aggregating every series of family whose label set contains
// labelSub (e.g. all devices and kernels of the host-clock job-latency
// histogram). It parses only what the gles2gpgpud exposition emits — a
// metric name, a {label,...} block with a le label, and a value — and
// interpolates linearly inside the chosen bucket, the same estimate
// Prometheus's histogram_quantile() produces.
func histogramQuantile(text, family, labelSub string, q float64) (float64, bool) {
	type bucket struct {
		le    float64
		count int64
	}
	sums := map[float64]int64{} // upper bound -> summed cumulative count
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest == "" || rest[0] != '{' {
			continue
		}
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			continue
		}
		labels := rest[1:end]
		if labelSub != "" && !strings.Contains(labels, labelSub) {
			continue
		}
		leStr := ""
		for _, kv := range strings.Split(labels, ",") {
			if v, ok := strings.CutPrefix(kv, "le="); ok {
				leStr = strings.Trim(v, `"`)
			}
		}
		if leStr == "" {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = v
		}
		valStr := strings.TrimSpace(rest[end+1:])
		count, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			continue
		}
		sums[le] += count
	}
	if len(sums) == 0 {
		return 0, false
	}
	buckets := make([]bucket, 0, len(sums))
	for le, c := range sums {
		buckets = append(buckets, bucket{le, c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	prevLE, prevCount := 0.0, int64(0)
	for _, b := range buckets {
		if float64(b.count) >= rank {
			if math.IsInf(b.le, 1) {
				// The quantile falls past the last finite bound; report
				// that bound (Prometheus does the same).
				return prevLE, true
			}
			inBucket := float64(b.count - prevCount)
			if inBucket <= 0 {
				return b.le, true
			}
			frac := (rank - float64(prevCount)) / inBucket
			return prevLE + (b.le-prevLE)*frac, true
		}
		prevLE, prevCount = b.le, b.count
	}
	return prevLE, true
}
