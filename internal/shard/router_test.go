package shard

// Router unit tests against scripted fake backends: affinity
// stickiness, round-robin rotation, admission control, retry/ejection/
// readmission, drain-by-ring-removal, 429 propagation, and the
// Prometheus surface including the scraped per-replica p99 gauge.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gles2gpgpu/internal/serve"
)

// fakeBackend is a scriptable daemon stand-in: it answers /healthz with
// 200 and runs jobs through handle (default: echo a tiny valid Result).
type fakeBackend struct {
	srv *httptest.Server

	mu     sync.Mutex
	keys   []string // affinity keys of jobs received
	handle func(w http.ResponseWriter, p serve.Params)
}

func newFakeBackend() *fakeBackend {
	b := &fakeBackend{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var p serve.Params
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key, _ := p.Key()
		b.mu.Lock()
		b.keys = append(b.keys, key)
		h := b.handle
		b.mu.Unlock()
		if h != nil {
			h(w, p)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.Result{Out: []float64{float64(p.N)}, N: p.N, Kernel: p.Kernel, Device: p.Device})
	})
	b.srv = httptest.NewServer(mux)
	return b
}

func (b *fakeBackend) URL() string { return b.srv.URL }

func (b *fakeBackend) jobCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.keys)
}

func (b *fakeBackend) distinctKeys() map[string]bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := map[string]bool{}
	for _, k := range b.keys {
		out[k] = true
	}
	return out
}

func sumJob(i int) serve.Params {
	return serve.Params{Device: "vc4", Kernel: "sum", N: 8 + 8*(i%8), Seed: int64(i)}
}

// saxpyJob generates a wide space of distinct affinity keys (alpha is
// part of the key class). Tests that must find a key owned by one
// specific replica search this space: replica names embed ephemeral
// ports, so ownership varies run to run and a handful of keys is not
// enough to guarantee a hit.
func saxpyJob(i int) serve.Params {
	return serve.Params{
		Device: "vc4", Kernel: "saxpy", N: 16,
		Alpha: float64(i%997+1) / 1000,
		Seed:  int64(i),
	}
}

func TestRouterAffinityStickiness(t *testing.T) {
	var backends []*fakeBackend
	var urls []string
	for i := 0; i < 3; i++ {
		b := newFakeBackend()
		defer b.srv.Close()
		backends = append(backends, b)
		urls = append(urls, b.URL())
	}
	rt, err := NewRouter(Config{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx := context.Background()
	// 8 distinct keys × 5 repeats: every repeat of a key must land on the
	// replica the ring names for it.
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 8; i++ {
			if _, err := rt.Do(ctx, sumJob(i)); err != nil {
				t.Fatalf("job %d: %v", i, err)
			}
		}
	}
	total := 0
	for bi, b := range backends {
		for k := range b.distinctKeys() {
			if owner := rt.ring.Lookup(k); owner != urls[bi] {
				t.Errorf("key %q observed on %s but ring owner is %s", k, urls[bi], owner)
			}
		}
		total += b.jobCount()
	}
	if total != 40 {
		t.Errorf("backends saw %d jobs, want 40", total)
	}
	// A key must never appear on two replicas.
	seen := map[string]int{}
	for bi, b := range backends {
		for k := range b.distinctKeys() {
			if prev, dup := seen[k]; dup {
				t.Errorf("key %q served by both replica %d and %d", k, prev, bi)
			}
			seen[k] = bi
		}
	}
}

func TestRouterRoundRobinRotation(t *testing.T) {
	var backends []*fakeBackend
	var urls []string
	for i := 0; i < 3; i++ {
		b := newFakeBackend()
		defer b.srv.Close()
		backends = append(backends, b)
		urls = append(urls, b.URL())
	}
	rt, err := NewRouter(Config{Replicas: urls, Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// One single key, 9 jobs: round-robin must spread it 3/3/3 — the
	// warmth-diluting behaviour the affinity policy exists to avoid.
	ctx := context.Background()
	for i := 0; i < 9; i++ {
		if _, err := rt.Do(ctx, serve.Params{Device: "vc4", Kernel: "sum", N: 16, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for bi, b := range backends {
		if b.jobCount() != 3 {
			t.Errorf("round-robin backend %d saw %d jobs, want 3", bi, b.jobCount())
		}
	}
}

func TestRouterAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	b := newFakeBackend()
	defer b.srv.Close()
	b.handle = func(w http.ResponseWriter, p serve.Params) {
		<-release
		json.NewEncoder(w).Encode(serve.Result{Out: []float64{1}, N: p.N})
	}
	rt, err := NewRouter(Config{Replicas: []string{b.URL()}, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(Handler(rt))
	defer srv.Close()

	// Occupy the single in-flight slot.
	errc := make(chan error, 1)
	go func() {
		_, err := rt.Do(context.Background(), serve.Params{Device: "vc4", Kernel: "sum", N: 8, Seed: 1})
		errc <- err
	}()
	waitFor(t, time.Second, func() bool {
		return rt.Replicas()[0].InFlight == 1
	})

	// The next job must shed with 429 + Retry-After through HTTP.
	body, _ := json.Marshal(serve.Params{Device: "vc4", Kernel: "sum", N: 8, Seed: 2})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full window status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After pacing hint")
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatalf("occupying job: %v", err)
	}
}

func TestRouterRetryReroutesAroundDeadReplica(t *testing.T) {
	good := newFakeBackend()
	defer good.srv.Close()
	bad := newFakeBackend()
	bad.srv.Close() // dead from the start: connection refused

	rt, err := NewRouter(Config{
		Replicas:     []string{good.URL(), bad.URL()},
		RetryBudget:  2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Find keys the ring places on the dead replica; routing them must
	// succeed anyway via retry onto the survivor.
	ctx := context.Background()
	routedViaRetry := 0
	for i := 0; i < 512 && routedViaRetry < 5; i++ {
		p := saxpyJob(i)
		key, _ := p.Key()
		if rt.ring.Lookup(key) != bad.URL() {
			continue
		}
		routedViaRetry++
		if _, err := rt.Do(ctx, p); err != nil {
			t.Fatalf("job with dead owner: %v", err)
		}
	}
	if routedViaRetry == 0 {
		t.Fatal("no test key hashed to the dead replica; widen the key set")
	}
	if got := rt.Retries(); got < int64(routedViaRetry) {
		t.Errorf("retries = %d, want >= %d (one per dead-owner job)", got, routedViaRetry)
	}
	// Three forward failures eject the dead replica; afterwards its keys
	// route straight to the survivor with no retry.
	if rt.HealthyCount() != 1 {
		t.Errorf("healthy count = %d, want 1 after ejection", rt.HealthyCount())
	}
	if rt.Ejections() != 1 {
		t.Errorf("ejections = %d, want 1", rt.Ejections())
	}
	before := rt.Retries()
	for i := 0; i < 8; i++ {
		if _, err := rt.Do(ctx, sumJob(i)); err != nil {
			t.Fatalf("post-ejection job %d: %v", i, err)
		}
	}
	if rt.Retries() != before {
		t.Errorf("post-ejection jobs still retried (%d -> %d); ejected replica must be off the ring", before, rt.Retries())
	}
}

func TestRouterEjectionAndReadmissionViaHealthLoop(t *testing.T) {
	good := newFakeBackend()
	defer good.srv.Close()

	// A backend we can kill and resurrect on the same address.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	srv := &http.Server{Handler: mux}
	go srv.Serve(l)

	rt, err := NewRouter(Config{
		Replicas:       []string{good.URL(), "http://" + addr},
		HealthInterval: 20 * time.Millisecond,
		FailThreshold:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Start()

	// Kill it: the health loop must eject within a few intervals.
	srv.Close()
	waitFor(t, 5*time.Second, func() bool { return rt.HealthyCount() == 1 })
	if rt.Ejections() < 1 {
		t.Errorf("ejections = %d, want >= 1", rt.Ejections())
	}

	// Resurrect on the same address: the loop must readmit.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: mux}
	go srv2.Serve(l2)
	defer srv2.Close()
	waitFor(t, 5*time.Second, func() bool { return rt.HealthyCount() == 2 })
	if rt.Readmissions() < 1 {
		t.Errorf("readmissions = %d, want >= 1", rt.Readmissions())
	}
}

func TestRouterDrainMigratesKeys(t *testing.T) {
	var urls []string
	var backends []*fakeBackend
	for i := 0; i < 3; i++ {
		b := newFakeBackend()
		defer b.srv.Close()
		backends = append(backends, b)
		urls = append(urls, b.URL())
	}
	rt, err := NewRouter(Config{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Keys owned by urls[1] before the drain...
	var victimKeys []string
	for i := 0; i < 512 && len(victimKeys) < 4; i++ {
		key, _ := saxpyJob(i).Key()
		if rt.ring.Lookup(key) == urls[1] {
			victimKeys = append(victimKeys, key)
		}
	}
	if len(victimKeys) == 0 {
		t.Fatal("no key hashed to the drain victim")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Drain(ctx, urls[1]); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// ...must now route to other replicas, and the drained one sees no
	// new traffic.
	before := backends[1].jobCount()
	for i := 0; i < 16; i++ {
		if _, err := rt.Do(ctx, sumJob(i)); err != nil {
			t.Fatalf("post-drain job %d: %v", i, err)
		}
	}
	if got := backends[1].jobCount(); got != before {
		t.Errorf("drained replica received %d new jobs, want 0", got-before)
	}
	for _, key := range victimKeys {
		if owner := rt.ring.Lookup(key); owner == urls[1] || owner == "" {
			t.Errorf("key %q still owned by drained replica (owner %q)", key, owner)
		}
	}
	// A drained replica stays out even though its health probes succeed.
	rt.healthPass()
	if rt.HealthyCount() != 2 {
		t.Errorf("healthy count = %d after drain + health pass, want 2", rt.HealthyCount())
	}
}

func TestRouterPropagatesBackend429(t *testing.T) {
	b := newFakeBackend()
	defer b.srv.Close()
	b.handle = func(w http.ResponseWriter, p serve.Params) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "serve: device queue full", http.StatusTooManyRequests)
	}
	rt, err := NewRouter(Config{Replicas: []string{b.URL()}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(Handler(rt))
	defer srv.Close()

	body, _ := json.Marshal(serve.Params{Device: "vc4", Kernel: "sum", N: 8, Seed: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want propagated 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want backend's %q", got, "7")
	}
	if b.jobCount() != 1 {
		t.Errorf("backend saw %d attempts, want 1 (429 must not be retried)", b.jobCount())
	}

	// The Go client path surfaces it as *serve.RetryAfterError with the
	// backend's pacing, matching the direct client contract.
	var retry *serve.RetryAfterError
	_, err = rt.Do(context.Background(), serve.Params{Device: "vc4", Kernel: "sum", N: 8, Seed: 1})
	if !asRetryAfter(err, &retry) || retry.RetryAfter != 7*time.Second {
		t.Errorf("Do error = %v, want RetryAfterError with 7s", err)
	}
}

func asRetryAfter(err error, target **serve.RetryAfterError) bool {
	for err != nil {
		if ra, ok := err.(*serve.RetryAfterError); ok {
			*target = ra
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestRouterPrometheusSurface(t *testing.T) {
	// Backend with a real scheduler so the scraped p99 gauge has a
	// histogram to read.
	s, err := serve.New(serve.Config{Devices: []string{"vc4"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Start()
	backend := httptest.NewServer(serve.Handler(s))
	defer backend.Close()

	rt, err := NewRouter(Config{Replicas: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv := httptest.NewServer(Handler(rt))
	defer srv.Close()

	for i := 0; i < 4; i++ {
		if _, err := rt.Do(context.Background(), serve.Params{Device: "vc4", Kernel: "sum", N: 16, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("router /metrics Content-Type = %q, want the 0.0.4 exposition version", ct)
	}
	var sb strings.Builder
	if _, err := copyAll(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"gles2gpgpu_router_replicas_healthy 1",
		fmt.Sprintf("gles2gpgpu_router_jobs_routed_total{replica=%q} 4", backend.URL),
		"gles2gpgpu_router_ejections_total 0",
		fmt.Sprintf("gles2gpgpu_router_replica_p99_seconds{replica=%q}", backend.URL),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router exposition missing %q:\n%s", want, text)
		}
	}
}

func copyAll(dst *strings.Builder, src interface{ Read([]byte) (int, error) }) (int64, error) {
	buf := make([]byte, 4096)
	var n int64
	for {
		k, err := src.Read(buf)
		dst.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	// Two series (devices) of one family; only clock="host" counts.
	text := strings.Join([]string{
		`gles2gpgpud_job_latency_seconds_bucket{device="vc4",kernel="sum",clock="host",le="0.001"} 50`,
		`gles2gpgpud_job_latency_seconds_bucket{device="vc4",kernel="sum",clock="host",le="0.01"} 90`,
		`gles2gpgpud_job_latency_seconds_bucket{device="vc4",kernel="sum",clock="host",le="+Inf"} 100`,
		`gles2gpgpud_job_latency_seconds_bucket{device="sgx",kernel="sum",clock="host",le="0.001"} 100`,
		`gles2gpgpud_job_latency_seconds_bucket{device="sgx",kernel="sum",clock="host",le="0.01"} 100`,
		`gles2gpgpud_job_latency_seconds_bucket{device="sgx",kernel="sum",clock="host",le="+Inf"} 100`,
		`gles2gpgpud_job_latency_seconds_bucket{device="vc4",kernel="sum",clock="virtual",le="0.001"} 0`,
		`gles2gpgpud_job_latency_seconds_bucket{device="vc4",kernel="sum",clock="virtual",le="+Inf"} 100`,
	}, "\n")
	// Aggregated host: 150@1ms, 190@10ms, 200@Inf. p50 rank=100 -> in
	// first bucket: 0 + 0.001*(100/150).
	got, ok := histogramQuantile(text, "gles2gpgpud_job_latency_seconds_bucket", `clock="host"`, 0.50)
	if !ok {
		t.Fatal("no histogram found")
	}
	want := 0.001 * (100.0 / 150.0)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	// p99 rank=198 exceeds the 190 at the last finite bound -> falls in
	// the +Inf bucket, reported as that bound.
	got, _ = histogramQuantile(text, "gles2gpgpud_job_latency_seconds_bucket", `clock="host"`, 0.99)
	if got != 0.01 {
		t.Errorf("p99 = %g, want last finite bound 0.01", got)
	}
	// p90 rank=180 -> second bucket: 0.001 + (0.01-0.001)*(180-150)/40
	got, _ = histogramQuantile(text, "gles2gpgpud_job_latency_seconds_bucket", `clock="host"`, 0.90)
	want = 0.001 + 0.009*(180.0-150.0)/40.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("p90 = %g, want %g", got, want)
	}
	// The virtual clock — all mass past the last finite bound at p99 —
	// reports the last finite bound.
	got, _ = histogramQuantile(text, "gles2gpgpud_job_latency_seconds_bucket", `clock="virtual"`, 0.99)
	if got != 0.001 {
		t.Errorf("virtual p99 = %g, want last finite bound 0.001", got)
	}
	if _, ok := histogramQuantile("nothing here", "gles2gpgpud_job_latency_seconds_bucket", "", 0.5); ok {
		t.Error("quantile of empty exposition reported ok")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
