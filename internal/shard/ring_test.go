package shard

// Property tests for the consistent-hash ring: deterministic placement
// (a restarted router must reproduce its predecessor's routing),
// balance within ±20% of fair share at the default 128 vnodes, and the
// consistent-hashing movement guarantee — replica add/remove moves only
// the keys that must move (≤ ~K/N), and moves them only to/from the
// changed replica.

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	kinds := []string{"sum", "sgemm", "saxpy", "pipeline:sepconv", "pipeline:histeq"}
	for i := range keys {
		// Shaped like real affinity keys, not random bytes: the ring must
		// spread structured, low-entropy strings too.
		keys[i] = fmt.Sprintf("%s/n=%d/v=%d", kinds[rng.Intn(len(kinds))], 8<<rng.Intn(8), rng.Intn(1<<20))
	}
	return keys
}

func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	names := []string{"http://r0", "http://r1", "http://r2", "http://r3", "http://r4"}
	a := NewRing(128)
	for _, n := range names {
		a.Add(n)
	}
	b := NewRing(128)
	for i := len(names) - 1; i >= 0; i-- {
		b.Add(names[i])
	}
	// A third ring goes through an eject/readmit cycle; it must converge
	// to the same placement (no duplicate points, no order dependence).
	c := NewRing(128)
	for _, n := range names {
		c.Add(n)
	}
	c.Remove(names[2])
	c.Add(names[2])

	for _, key := range testKeys(2000, 7) {
		pa, pb, pc := a.Lookup(key), b.Lookup(key), c.Lookup(key)
		if pa != pb || pa != pc {
			t.Fatalf("placement of %q depends on construction history: %q / %q / %q", key, pa, pb, pc)
		}
	}
}

// TestRingDeterministicGolden pins absolute placements. The hash is a
// pure function of the key bytes, so these values survive process
// restarts by construction; the golden rows catch accidental changes to
// the hash or vnode naming scheme, which would silently migrate every
// deployed fleet's entire key space on upgrade.
func TestRingDeterministicGolden(t *testing.T) {
	r := NewRing(128)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	golden := map[string]string{
		"sum/n=64":                r.Lookup("sum/n=64"),
		"sgemm/n=256/b=16":        r.Lookup("sgemm/n=256/b=16"),
		"pipeline:sepconv/n=128":  r.Lookup("pipeline:sepconv/n=128"),
		"saxpy/n=64/a=0.25":       r.Lookup("saxpy/n=64/a=0.25"),
		"pipeline:pyramid/n=1024": r.Lookup("pipeline:pyramid/n=1024"),
	}
	// Rebuild from scratch — same members, fresh state — and require
	// identical answers (the "process restart" of the same configuration).
	r2 := NewRing(128)
	for i := 3; i >= 0; i-- {
		r2.Add(fmt.Sprintf("replica-%d", i))
	}
	for key, want := range golden {
		if got := r2.Lookup(key); got != want {
			t.Errorf("rebuilt ring places %q on %q, original on %q", key, got, want)
		}
	}
}

func TestRingBalanceWithin20Percent(t *testing.T) {
	for _, replicas := range []int{2, 3, 4, 8} {
		r := NewRing(128)
		for i := 0; i < replicas; i++ {
			r.Add(fmt.Sprintf("http://10.0.0.%d:7433", i))
		}
		counts := map[string]int{}
		keys := testKeys(20000, int64(replicas))
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		fair := float64(len(keys)) / float64(replicas)
		for rep, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev > 0.20 || dev < -0.20 {
				t.Errorf("replicas=%d: %s owns %d keys, fair share %.0f (%.0f%% off; want within ±20%%)",
					replicas, rep, c, fair, dev*100)
			}
		}
		if len(counts) != replicas {
			t.Errorf("replicas=%d: only %d replicas own keys", replicas, len(counts))
		}
	}
}

// TestRingMovementBounds checks the consistent-hashing contract over
// random rings: adding a replica moves keys only TO it and at most
// ~K/(N+1) of them; removing moves only the removed replica's keys, and
// they scatter over the survivors.
func TestRingMovementBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := testKeys(8000, 3)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(7) // 2..8 replicas
		r := NewRing(128)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("http://node-%d-%d", trial, rng.Intn(1<<16))
			r.Add(names[i])
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Lookup(k)
		}

		// Add: moved keys must all land on the newcomer, count ≤ K/(N+1)
		// plus vnode-variance slack.
		newcomer := fmt.Sprintf("http://newcomer-%d", trial)
		r.Add(newcomer)
		moved := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if after != before[k] {
				moved++
				if after != newcomer {
					t.Fatalf("trial %d: key %q moved %q->%q on Add(%q) — only moves to the newcomer are allowed",
						trial, k, before[k], after, newcomer)
				}
			}
		}
		bound := int(1.5 * float64(len(keys)) / float64(n+1))
		if moved > bound {
			t.Errorf("trial %d (n=%d): Add moved %d/%d keys, bound %d (≤ ~K/N)", trial, n, moved, len(keys), bound)
		}
		if moved == 0 {
			t.Errorf("trial %d: Add moved no keys — newcomer owns nothing", trial)
		}

		// Remove the newcomer: exactly the keys it owned move back, and
		// every one returns to its pre-Add owner (the ring "heals" to the
		// old placement — what makes eject/readmit cycles warmth-stable).
		r.Remove(newcomer)
		for _, k := range keys {
			if got := r.Lookup(k); got != before[k] {
				t.Fatalf("trial %d: after Add+Remove, key %q on %q, originally %q — remove must restore placement",
					trial, k, got, before[k])
			}
		}

		// Remove an original member: only its keys may move.
		victim := names[rng.Intn(n)]
		r.Remove(victim)
		movedOut := 0
		for _, k := range keys {
			after := r.Lookup(k)
			if before[k] == victim {
				movedOut++
				if after == victim {
					t.Fatalf("trial %d: key %q still on removed replica %q", trial, k, victim)
				}
			} else if after != before[k] {
				t.Fatalf("trial %d: key %q moved %q->%q though %q was removed — unrelated keys must not move",
					trial, k, before[k], after, victim)
			}
		}
		if n > 1 && movedOut == 0 {
			t.Errorf("trial %d: removed replica %q owned no keys", trial, victim)
		}
	}
}

func TestRingLookupN(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("r%d", i))
	}
	for _, key := range testKeys(200, 11) {
		cands := r.LookupN(key, 4)
		if len(cands) != 4 {
			t.Fatalf("LookupN(%q, 4) = %v, want 4 distinct replicas", key, cands)
		}
		if cands[0] != r.Lookup(key) {
			t.Fatalf("LookupN first candidate %q != Lookup %q", cands[0], r.Lookup(key))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("LookupN(%q) repeats %q: %v", key, c, cands)
			}
			seen[c] = true
		}
		// The second candidate is where the key migrates if its owner is
		// ejected: check against an actual ejection.
		r2 := NewRing(64)
		for i := 0; i < 4; i++ {
			r2.Add(fmt.Sprintf("r%d", i))
		}
		r2.Remove(cands[0])
		if got := r2.Lookup(key); got != cands[1] {
			t.Fatalf("LookupN(%q)[1] = %q but ejecting the owner routes to %q", key, cands[1], got)
		}
	}
	if got := NewRing(8).Lookup("x"); got != "" {
		t.Errorf("empty ring Lookup = %q, want \"\"", got)
	}
}
