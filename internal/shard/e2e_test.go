package shard_test

// End-to-end tests of the sharded fleet: N real gles2gpgpud replicas
// (each a full serve.Scheduler behind its own HTTP listener), a router
// in front, and bit-identical comparison of every routed result against
// direct single-engine execution — including while one replica is
// killed and restarted mid-stream. The router must be invisible in the
// numbers; only latency and placement may change.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/serve"
	"gles2gpgpu/internal/shard"
)

const e2eN = 32

// replica is one in-process gles2gpgpud: a scheduler plus an HTTP
// server on a stable address, killable and restartable on that address
// so chaos tests can model a daemon crash + supervisor restart.
type replica struct {
	t    *testing.T
	addr string

	mu  sync.Mutex
	s   *serve.Scheduler
	srv *http.Server
}

func startReplica(t *testing.T) *replica {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &replica{t: t, addr: l.Addr().String()}
	r.serveOn(l)
	t.Cleanup(r.kill)
	return r
}

func (r *replica) serveOn(l net.Listener) {
	s, err := serve.New(serve.Config{Devices: []string{"vc4"}, QueueDepth: 256})
	if err != nil {
		r.t.Fatal(err)
	}
	s.Start()
	srv := &http.Server{Handler: serve.Handler(s)}
	go srv.Serve(l)
	r.mu.Lock()
	r.s, r.srv = s, srv
	r.mu.Unlock()
}

func (r *replica) url() string { return "http://" + r.addr }

// kill closes the listener and all live connections (in-flight forwards
// see a transport error) and stops the scheduler. Idempotent.
func (r *replica) kill() {
	r.mu.Lock()
	s, srv := r.s, r.srv
	r.s, r.srv = nil, nil
	r.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if s != nil {
		s.Stop()
	}
}

// restart rebinds the replica's original address with a fresh scheduler
// — a cold daemon, as after a crash: empty caches, same identity.
func (r *replica) restart() {
	r.t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ { // the old socket can linger briefly
		l, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		r.t.Fatalf("rebind %s: %v", r.addr, err)
	}
	r.serveOn(l)
}

// directRun executes one job on a fresh engine with no service or
// routing machinery and returns the result matrix — the ground truth
// every routed result must match bit-for-bit.
func directRun(t *testing.T, p serve.Params) []float64 {
	t.Helper()
	prof, err := device.ByName(p.Device)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(core.Config{
		Device: prof,
		Width:  p.N, Height: p.N,
		Swap:   core.SwapNone,
		Target: core.TargetTexture,
		UseVBO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.Inputs()
	var r core.Runner
	switch p.Kernel {
	case "sum":
		r, err = core.NewSum(e, a, b)
	case "sgemm":
		r, err = core.NewSgemm(e, a, b, p.Block)
	case "saxpy":
		r, err = core.NewSaxpy(e, float32(p.Alpha), a, b)
	default:
		t.Fatalf("directRun: kernel %q", p.Kernel)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.Finish()
	out, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	return out.Data
}

func e2eSpecs(n int) []serve.Params {
	specs := make([]serve.Params, n)
	for i := range specs {
		p := serve.Params{Device: "vc4", Kernel: "sum", N: e2eN, Seed: int64(i%4) + 1}
		switch i % 4 {
		case 2:
			p.Kernel = "saxpy"
			// 8 distinct alpha classes -> 10 distinct affinity keys per
			// stream, enough that a 3-replica ring with ephemeral-port
			// names spreads traffic with near-certainty.
			p.Alpha = float64((i/4)%8+1) / 16
		case 3:
			p.Kernel = "sgemm"
			p.Block = 16
		}
		specs[i] = p
	}
	return specs
}

func checkBitIdentical(t *testing.T, i int, p serve.Params, got []float64, truth map[string][]float64, truthMu *sync.Mutex) error {
	key, err := p.Key()
	if err != nil {
		return err
	}
	// Kernel outputs depend only on the key class + seed; fold seed in.
	tk := fmt.Sprintf("%s/seed=%d", key, p.Seed)
	truthMu.Lock()
	want, ok := truth[tk]
	truthMu.Unlock()
	if !ok {
		return fmt.Errorf("job %d: no ground truth for %s", i, tk)
	}
	if len(got) != len(want) {
		return fmt.Errorf("job %d (%s): got %d values, want %d", i, tk, len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			return fmt.Errorf("job %d (%s): out[%d] = %v, direct = %v (must be bit-identical)",
				i, tk, k, got[k], want[k])
		}
	}
	return nil
}

func groundTruth(t *testing.T, specs []serve.Params) map[string][]float64 {
	truth := map[string][]float64{}
	for _, p := range specs {
		key, err := p.Key()
		if err != nil {
			t.Fatal(err)
		}
		tk := fmt.Sprintf("%s/seed=%d", key, p.Seed)
		if _, ok := truth[tk]; !ok {
			truth[tk] = directRun(t, p)
		}
	}
	return truth
}

// TestRoutedEndToEndBitIdentity routes a mixed workload through three
// real replicas and requires every result to match direct engine
// execution bit-for-bit, with the key space actually spread across the
// fleet.
func TestRoutedEndToEndBitIdentity(t *testing.T) {
	var reps []*replica
	var urls []string
	for i := 0; i < 3; i++ {
		r := startReplica(t)
		reps = append(reps, r)
		urls = append(urls, r.url())
	}
	// The window is widened past the burst size: admission behaviour has
	// its own test, this one is about numbers.
	rt, err := shard.NewRouter(shard.Config{Replicas: urls, MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(shard.Handler(rt))
	defer front.Close()
	// The router speaks the daemon protocol, so the plain daemon client
	// works against it unchanged.
	client := &serve.Client{Base: front.URL}

	specs := e2eSpecs(48)
	truth := groundTruth(t, specs)
	var truthMu sync.Mutex

	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for i, p := range specs {
		wg.Add(1)
		go func(i int, p serve.Params) {
			defer wg.Done()
			res, err := client.Do(context.Background(), p)
			if err != nil {
				errs <- fmt.Errorf("job %d: %w", i, err)
				return
			}
			if err := checkBitIdentical(t, i, p, res.Out, truth, &truthMu); err != nil {
				errs <- err
			}
		}(i, p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The workload's key classes must have spread over the fleet: with 6
	// distinct keys on 3 replicas, at least two replicas see traffic.
	routed := rt.RoutedTotals()
	busy := 0
	var total int64
	for _, n := range routed {
		if n > 0 {
			busy++
		}
		total += n
	}
	if busy < 2 {
		t.Errorf("only %d replicas saw traffic (routed=%v), want >= 2", busy, routed)
	}
	if total != int64(len(specs)) {
		t.Errorf("routed %d terminal responses, want %d", total, len(specs))
	}
	if rt.Retries() != 0 {
		t.Errorf("healthy fleet needed %d retries, want 0", rt.Retries())
	}
}

// TestRoutedChaosKillRestart streams jobs through the fleet while one
// replica is killed mid-run and later restarted. Every job that returns
// OK must still be bit-identical to direct execution (retries are safe
// because jobs are deterministic), the retry budget bounds per-job
// attempts, and the fleet heals: the restarted replica is readmitted
// and serves again.
func TestRoutedChaosKillRestart(t *testing.T) {
	var reps []*replica
	var urls []string
	for i := 0; i < 3; i++ {
		r := startReplica(t)
		reps = append(reps, r)
		urls = append(urls, r.url())
	}
	rt, err := shard.NewRouter(shard.Config{
		Replicas:       urls,
		MaxInFlight:    64,
		RetryBudget:    3,
		RetryBackoff:   5 * time.Millisecond,
		FailThreshold:  2,
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Start()
	front := httptest.NewServer(shard.Handler(rt))
	defer front.Close()
	client := &serve.Client{Base: front.URL}

	const jobs = 96
	specs := e2eSpecs(jobs)
	truth := groundTruth(t, specs)
	var truthMu sync.Mutex

	// Kill replica 1 once a third of the stream is in, restart it at two
	// thirds; the stream never pauses.
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	okCount := int64(0)
	var okMu sync.Mutex
	for i, p := range specs {
		if i == jobs/3 {
			reps[1].kill()
		}
		if i == 2*jobs/3 {
			reps[1].restart()
		}
		wg.Add(1)
		go func(i int, p serve.Params) {
			defer wg.Done()
			res, err := client.Do(context.Background(), p)
			if err != nil {
				// A failed job is acceptable chaos fallout only as an
				// explicit error — never as wrong data. Shed/exhausted
				// jobs are counted, corrupted ones fail the test.
				return
			}
			if err := checkBitIdentical(t, i, p, res.Out, truth, &truthMu); err != nil {
				errs <- err
				return
			}
			okMu.Lock()
			okCount++
			okMu.Unlock()
		}(i, p)
		time.Sleep(2 * time.Millisecond) // open-ish pacing so the kill lands mid-stream
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if okCount < jobs*3/4 {
		t.Errorf("only %d/%d jobs succeeded; re-routing around the dead replica should save most", okCount, jobs)
	}
	if rt.Ejections() < 1 {
		t.Errorf("ejections = %d, want >= 1 (replica was killed mid-run)", rt.Ejections())
	}
	// Retry budget: total retries can never exceed jobs × budget.
	if max := int64(jobs * 3); rt.Retries() > max {
		t.Errorf("retries = %d, exceeds the fleet-wide budget bound %d", rt.Retries(), max)
	}

	// The fleet heals: the restarted replica is readmitted...
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && rt.HealthyCount() < 3 {
		time.Sleep(20 * time.Millisecond)
	}
	if rt.HealthyCount() != 3 {
		t.Fatalf("healthy count = %d after restart, want 3", rt.HealthyCount())
	}
	if rt.Readmissions() < 1 {
		t.Errorf("readmissions = %d, want >= 1", rt.Readmissions())
	}
	// ...and post-heal traffic is still bit-identical, including keys
	// owned by the restarted (cold) replica.
	for i, p := range e2eSpecs(12) {
		res, err := client.Do(context.Background(), p)
		if err != nil {
			t.Fatalf("post-heal job %d: %v", i, err)
		}
		if err := checkBitIdentical(t, i, p, res.Out, truth, &truthMu); err != nil {
			t.Error(err)
		}
	}
}
