package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"gles2gpgpu/internal/serve"
)

// maxJobBody bounds a routed job body: the largest admissible job is two
// inline MaxJobSize² float64 matrices in JSON (~25 bytes per value), and
// anything bigger is rejected before buffering.
const maxJobBody = 2 * serve.MaxJobSize * serve.MaxJobSize * 32

// Handler builds the router's HTTP API:
//
//	POST /v1/jobs          route a job (serve.Params JSON) to a replica
//	GET  /v1/replicas      per-replica routing state (health, in-flight)
//	POST /v1/drain?replica= gracefully remove a replica from the ring
//	GET  /metrics          Prometheus text exposition (router + scraped p99)
//	GET  /healthz          liveness
//
// The job endpoint speaks exactly the daemon's protocol — clients point
// at the router instead of a backend and see the same statuses, bodies
// and Retry-After pacing, now fleet-wide.
func Handler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxJobBody+1))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		if len(body) > maxJobBody {
			http.Error(w, "job body too large", http.StatusRequestEntityTooLarge)
			return
		}
		var p serve.Params
		if err := json.Unmarshal(body, &p); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		key, err := p.Key()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := rt.RouteRaw(r.Context(), key, body)
		switch {
		case err == nil:
			if resp.Status == http.StatusTooManyRequests && resp.RetryAfter != "" {
				w.Header().Set("Retry-After", resp.RetryAfter)
			}
			if resp.Status == http.StatusOK {
				w.Header().Set("Content-Type", "application/json")
			}
			w.Header().Set("X-Routed-Replica", resp.Replica)
			w.Header().Set("X-Routed-Retries", fmt.Sprintf("%d", resp.Retries))
			w.WriteHeader(resp.Status)
			w.Write(resp.Body)
		case errors.Is(err, ErrBusy), errors.Is(err, ErrNoReplicas):
			// Router-level shedding paces exactly like backend queue-full.
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		case errors.Is(err, ErrExhausted):
			http.Error(w, err.Error(), http.StatusBadGateway)
		default:
			http.Error(w, err.Error(), http.StatusBadGateway)
		}
	})
	mux.HandleFunc("/v1/replicas", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rt.Replicas())
	})
	mux.HandleFunc("/v1/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		name := r.URL.Query().Get("replica")
		if name == "" {
			http.Error(w, "missing replica parameter", http.StatusBadRequest)
			return
		}
		if err := rt.Drain(r.Context(), name); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "drained %s\n", name)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rt.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// ListenAndServe runs the router's HTTP API on addr until ctx is
// canceled, then shuts down: the listener closes (in-flight forwards
// finish on their own contexts) and the health loop stops. ready, when
// non-nil, receives the bound address before requests are accepted.
func ListenAndServe(ctx context.Context, addr string, rt *Router, ready chan<- string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- l.Addr().String()
	}
	rt.Start()
	defer rt.Close()
	srv := &http.Server{Handler: Handler(rt)}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	return <-errc
}
