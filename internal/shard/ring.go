// Package shard scales gles2gpgpud out to a replica fleet. Its core is a
// consistent-hash ring that places jobs on backends by their affinity key
// (serve.Params.Key — the warm-runner compatibility class), so every
// replica sees a stable subset of the key space and its compiled
// programs, warm runners and resident tensors stay hot for exactly that
// subset. Around the ring sits a fronting router: health-checked
// ejection and readmission, bounded per-replica in-flight windows with
// 429 backpressure, a per-job retry budget with jittered backoff (safe
// because every job is bit-deterministic and side-effect-free — retrying
// is re-running), and graceful shard drain by hash-ring removal.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per replica. 128 points per
// replica bounds the expected per-replica load imbalance to roughly
// 1/sqrt(128) ≈ 9% of fair share (the ring property test pins ±20%).
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Placement is a pure
// function of the member names and the vnode count — no process state,
// no insertion-order dependence — so a restarted router reproduces the
// exact placement of its predecessor and replicas keep their key sets
// across router restarts.
//
// Ring is not safe for concurrent mutation; the Router guards it.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool
}

type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing builds an empty ring. vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, member: map[string]bool{}}
}

// mix64 is the splitmix64 finalizer. FNV-1a alone clusters structured
// inputs like "replica#17"; the finalizer's avalanche spreads the vnode
// points uniformly around the ring, which is what the ±20% balance
// property rests on.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// Add inserts a replica's virtual nodes. Adding an existing member is a
// no-op, so eject/readmit cycles cannot duplicate points.
func (r *Ring) Add(replica string) {
	if r.member[replica] {
		return
	}
	r.member[replica] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:    hashString(fmt.Sprintf("%s#%d", replica, i)),
			replica: replica,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a replica's virtual nodes. Keys it owned migrate to
// their next clockwise point; every other key keeps its owner — the
// consistent-hashing guarantee the movement property test pins.
func (r *Ring) Remove(replica string) {
	if !r.member[replica] {
		return
	}
	delete(r.member, replica)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.replica != replica {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(replica string) bool { return r.member[replica] }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.member) }

// Lookup returns the replica owning key: the first point clockwise from
// the key's hash. Empty ring returns "".
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(hashString(key))].replica
}

// LookupN returns up to n distinct replicas in ring order starting at
// the key's owner. The router walks this list when retrying around a
// failed shard: the first healthy candidate is the key's home under the
// current ring, the rest are where the key would migrate if its home
// were ejected — so retries land exactly where the healed ring will
// route, and warmth built during an outage is not wasted.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	start := r.successor(hashString(key))
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// successor finds the index of the first point with hash >= h, wrapping.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
