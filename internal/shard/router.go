package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gles2gpgpu/internal/serve"
)

// Policy selects how the router places jobs on replicas.
const (
	// PolicyAffinity consistent-hashes the job's affinity key onto the
	// ring: every job of one warm-runner class lands on the same replica,
	// so compiled programs, warm runners and resident tensors stay hot
	// per shard. This is the router's perf thesis; the servebench sweep
	// measures it against round-robin.
	PolicyAffinity = "affinity"
	// PolicyRoundRobin rotates jobs across healthy replicas regardless of
	// key — the baseline that dilutes every replica's warm-runner LRU
	// with every key.
	PolicyRoundRobin = "roundrobin"
)

// Sentinel errors the routing path returns. The HTTP layer maps
// ErrNoReplicas and ErrBusy to 429 with Retry-After (shed, do not
// buffer) and ErrExhausted to 502.
var (
	ErrNoReplicas = errors.New("shard: no healthy replicas")
	ErrBusy       = errors.New("shard: replica in-flight window full")
	ErrExhausted  = errors.New("shard: retry budget exhausted")
	ErrDraining   = errors.New("shard: replica draining")
)

// Config sizes the router.
type Config struct {
	// Replicas are the backend daemon base URLs, e.g.
	// "http://127.0.0.1:7433". Order matters only to round-robin.
	Replicas []string
	// VNodes is the virtual-node count per replica (default 128).
	VNodes int
	// Policy is PolicyAffinity (default) or PolicyRoundRobin.
	Policy string
	// MaxInFlight bounds concurrently forwarded jobs per replica
	// (default 32). A full window rejects with 429 + Retry-After —
	// admission control, mirroring the backends' own bounded queues.
	MaxInFlight int
	// RetryBudget is the number of re-route attempts after the first
	// (default 2). Retries are safe unconditionally: jobs are
	// bit-deterministic, side-effect-free functions of their params, so
	// re-running one — even one whose first attempt actually completed
	// before the connection died — produces the identical bytes.
	RetryBudget int
	// RetryBackoff is the base backoff before a retry (default 10ms),
	// doubled per attempt and jittered ±50%.
	RetryBackoff time.Duration
	// FailThreshold is the consecutive-failure count (forward errors and
	// failed health probes both count) that ejects a replica from the
	// ring (default 3).
	FailThreshold int
	// HealthInterval spaces the background health probes (default 500ms).
	// Ejected replicas keep being probed; a success readmits them.
	HealthInterval time.Duration
	// HTTP is the forwarding transport; nil means a client with no
	// global timeout (job contexts bound each request).
	HTTP *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Policy == "" {
		c.Policy = PolicyAffinity
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	return c
}

// replica is one backend's routing state. All fields are guarded by the
// router mutex.
type replica struct {
	name     string
	inflight int
	fails    int // consecutive forward/probe failures
	healthy  bool
	draining bool
	routed   int64
}

// Router fronts a replica fleet: it places jobs by consistent hashing
// (or round-robin), health-checks the backends, ejects and readmits
// them on the ring, bounds per-replica in-flight windows, and retries
// failed forwards around dead shards within a per-job budget.
type Router struct {
	cfg     Config
	client  *http.Client
	metrics *routerMetrics

	mu     sync.Mutex
	cond   *sync.Cond // broadcast when a replica's inflight drops
	ring   *Ring
	reps   map[string]*replica
	order  []string // config order, for round-robin rotation
	rr     int
	closed bool

	stopHealth chan struct{}
	healthWG   sync.WaitGroup
}

// NewRouter builds a router over the configured replicas. All replicas
// start healthy and on the ring; the first health pass corrects that
// within one interval. Call Start to launch the health loop and Close
// to stop it.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("shard: no replicas configured")
	}
	if cfg.Policy != PolicyAffinity && cfg.Policy != PolicyRoundRobin {
		return nil, fmt.Errorf("shard: unknown policy %q (want %s or %s)", cfg.Policy, PolicyAffinity, PolicyRoundRobin)
	}
	rt := &Router{
		cfg:        cfg,
		client:     cfg.HTTP,
		metrics:    newRouterMetrics(),
		ring:       NewRing(cfg.VNodes),
		reps:       map[string]*replica{},
		stopHealth: make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	rt.cond = sync.NewCond(&rt.mu)
	for _, name := range cfg.Replicas {
		if _, dup := rt.reps[name]; dup {
			return nil, fmt.Errorf("shard: duplicate replica %q", name)
		}
		rt.reps[name] = &replica{name: name, healthy: true}
		rt.order = append(rt.order, name)
		rt.ring.Add(name)
	}
	return rt, nil
}

// Start launches the background health loop.
func (rt *Router) Start() {
	rt.healthWG.Add(1)
	go func() {
		defer rt.healthWG.Done()
		t := time.NewTicker(rt.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.stopHealth:
				return
			case <-t.C:
				rt.healthPass()
			}
		}
	}()
}

// Close stops the health loop. In-flight forwards complete on their own
// contexts.
func (rt *Router) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.stopHealth)
	rt.healthWG.Wait()
}

// Policy reports the configured placement policy.
func (rt *Router) Policy() string { return rt.cfg.Policy }

// healthPass probes every replica once and applies ejection/readmission.
func (rt *Router) healthPass() {
	rt.mu.Lock()
	names := append([]string(nil), rt.order...)
	rt.mu.Unlock()
	timeout := rt.cfg.HealthInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	for _, name := range names {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		ok := rt.probe(ctx, name)
		cancel()
		if ok {
			rt.noteSuccess(name)
		} else {
			rt.noteFailure(name)
		}
	}
}

func (rt *Router) probe(ctx context.Context, name string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// noteSuccess resets a replica's failure streak and readmits it to the
// ring if it was ejected (never while draining: drain is deliberate ring
// removal, not a health verdict).
func (rt *Router) noteSuccess(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r, ok := rt.reps[name]
	if !ok {
		return
	}
	r.fails = 0
	if !r.healthy && !r.draining {
		r.healthy = true
		rt.ring.Add(name)
		rt.metrics.readmissions++
	}
}

// noteFailure advances the streak and ejects at the threshold. Ejection
// removes the replica's vnodes, migrating its keys to their successors;
// readmission restores the exact prior placement (the ring is a pure
// function of membership), so a kill/restart cycle is warmth-stable for
// every other shard.
func (rt *Router) noteFailure(name string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r, ok := rt.reps[name]
	if !ok {
		return
	}
	r.fails++
	if r.healthy && r.fails >= rt.cfg.FailThreshold {
		r.healthy = false
		rt.ring.Remove(name)
		rt.metrics.ejections++
	}
}

// Drain gracefully removes a replica from rotation: its vnodes leave
// the ring (new jobs of its keys route to the successors), then Drain
// blocks until the replica's in-flight window is empty. The backend
// itself is untouched — pair with the daemon's own SIGTERM drain to
// retire a node.
func (rt *Router) Drain(ctx context.Context, name string) error {
	rt.mu.Lock()
	r, ok := rt.reps[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("shard: unknown replica %q", name)
	}
	if !r.draining {
		r.draining = true
		rt.ring.Remove(name)
	}
	rt.mu.Unlock()

	// Wake the waiter when ctx dies so the cond loop can observe it.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			rt.cond.Broadcast()
		case <-done:
		}
	}()

	rt.mu.Lock()
	defer rt.mu.Unlock()
	for r.inflight > 0 && ctx.Err() == nil {
		rt.cond.Wait()
	}
	return ctx.Err()
}

// pick chooses the job's first-attempt replica under the configured
// policy. Admission is strict: a full in-flight window sheds (ErrBusy)
// instead of spilling the key to a colder shard — the same
// backpressure-over-buffering stance the backends take, and the only
// stance that keeps the affinity/round-robin comparison honest.
func (rt *Router) pick(key string) (*replica, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var r *replica
	switch rt.cfg.Policy {
	case PolicyRoundRobin:
		n := len(rt.order)
		for i := 0; i < n; i++ {
			cand := rt.reps[rt.order[rt.rr%n]]
			rt.rr++
			if cand.healthy && !cand.draining {
				r = cand
				break
			}
		}
	default: // PolicyAffinity
		if owner := rt.ring.Lookup(key); owner != "" {
			r = rt.reps[owner]
		}
	}
	if r == nil {
		return nil, ErrNoReplicas
	}
	if r.inflight >= rt.cfg.MaxInFlight {
		return nil, ErrBusy
	}
	r.inflight++
	return r, nil
}

// pickRetry chooses a replacement replica after a failure: the ring walk
// from the key (affinity) or the rotation (round-robin), skipping tried
// and unhealthy replicas. Unlike first-attempt admission, a full window
// is skipped rather than shed — the job already cost a failed forward,
// so the router works harder to land it.
func (rt *Router) pickRetry(key string, tried map[string]bool) (*replica, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var candidates []string
	if rt.cfg.Policy == PolicyRoundRobin {
		candidates = rt.order
	} else {
		candidates = rt.ring.LookupN(key, len(rt.reps))
		// The ring only holds healthy members; ejections during the walk
		// are re-checked below via the replica state.
	}
	for _, name := range candidates {
		r := rt.reps[name]
		if r == nil || tried[name] || !r.healthy || r.draining || r.inflight >= rt.cfg.MaxInFlight {
			continue
		}
		r.inflight++
		return r, nil
	}
	return nil, ErrNoReplicas
}

func (rt *Router) release(r *replica) {
	rt.mu.Lock()
	r.inflight--
	rt.mu.Unlock()
	rt.cond.Broadcast()
}

// backendResponse is a forwarded job's terminal outcome.
type backendResponse struct {
	Status     int
	RetryAfter string // verbatim backend header, propagated on 429
	Body       []byte
	Replica    string
	Retries    int
}

// forward sends the job body to one replica and classifies the result.
// retryable reports transport errors and 5xx (the replica, not the job,
// is suspect); everything else is terminal for the routing loop.
func (rt *Router) forward(ctx context.Context, r *replica, body []byte) (resp *backendResponse, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.name+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client went away; do not blame the replica.
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, err
	}
	if httpResp.StatusCode >= 500 {
		return nil, true, fmt.Errorf("shard: %s: %s: %s", r.name, httpResp.Status, bytes.TrimSpace(data))
	}
	return &backendResponse{
		Status:     httpResp.StatusCode,
		RetryAfter: httpResp.Header.Get("Retry-After"),
		Body:       data,
		Replica:    r.name,
	}, false, nil
}

// RouteRaw places one job (pre-encoded Params JSON with affinity key
// already computed) and returns the backend's terminal response. On
// transport errors and 5xx it retries within the budget, with jittered
// exponential backoff, re-routing around replicas it has already tried
// or ejected. 429 and 4xx propagate immediately: backpressure and
// client errors must reach the caller undamped.
func (rt *Router) RouteRaw(ctx context.Context, key string, body []byte) (*backendResponse, error) {
	r, err := rt.pick(key)
	if err != nil {
		rt.metrics.rejectLocked(err)
		return nil, err
	}
	tried := map[string]bool{}
	retries := 0
	for {
		tried[r.name] = true
		resp, retryable, err := rt.forward(ctx, r, body)
		rt.release(r)
		if err == nil {
			rt.mu.Lock()
			r.fails = 0
			r.routed++
			rt.mu.Unlock()
			rt.metrics.routed(r.name, resp.Status)
			resp.Retries = retries
			return resp, nil
		}
		if !retryable {
			return nil, err
		}
		rt.noteFailure(r.name)
		if retries >= rt.cfg.RetryBudget {
			rt.metrics.exhausted(err)
			return nil, fmt.Errorf("%w after %d attempts: %v", ErrExhausted, retries+1, err)
		}
		retries++
		rt.metrics.retry(err)
		// Jittered exponential backoff: base<<retry, ±50%.
		base := rt.cfg.RetryBackoff << (retries - 1)
		d := base/2 + time.Duration(rand.Int63n(int64(base)))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		r, err = rt.pickRetry(key, tried)
		if err != nil {
			// Every untried replica is ejected or full. One last chance:
			// forget the tried set (a replica may have healed) rather
			// than failing a retryable job outright.
			r, err = rt.pickRetry(key, map[string]bool{})
			if err != nil {
				rt.metrics.rejectLocked(err)
				return nil, err
			}
		}
	}
}

// Do places one job from Go (the bench and tests' entry point): encode,
// route, decode. Backend 429s surface as *serve.RetryAfterError exactly
// like the direct client, so callers pace identically with or without
// the router in front.
func (rt *Router) Do(ctx context.Context, p serve.Params) (*serve.Result, error) {
	key, err := p.Key()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	resp, err := rt.RouteRaw(ctx, key, body)
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case http.StatusOK:
		var res serve.Result
		if err := json.Unmarshal(resp.Body, &res); err != nil {
			return nil, err
		}
		return &res, nil
	case http.StatusTooManyRequests:
		after := time.Second
		if secs, err := strconv.Atoi(resp.RetryAfter); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return nil, &serve.RetryAfterError{RetryAfter: after, Body: string(bytes.TrimSpace(resp.Body))}
	default:
		return nil, fmt.Errorf("shard: %s: status %d: %s", resp.Replica, resp.Status, bytes.TrimSpace(resp.Body))
	}
}

// ReplicaState is one backend's routing status, for /v1/replicas.
type ReplicaState struct {
	Replica  string `json:"replica"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	InFlight int    `json:"in_flight"`
	Routed   int64  `json:"routed"`
	Fails    int    `json:"consecutive_fails"`
}

// Replicas snapshots every backend's routing state in config order.
func (rt *Router) Replicas() []ReplicaState {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]ReplicaState, 0, len(rt.order))
	for _, name := range rt.order {
		r := rt.reps[name]
		out = append(out, ReplicaState{
			Replica: r.name, Healthy: r.healthy, Draining: r.draining,
			InFlight: r.inflight, Routed: r.routed, Fails: r.fails,
		})
	}
	return out
}

// HealthyCount returns the number of in-rotation replicas.
func (rt *Router) HealthyCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, r := range rt.reps {
		if r.healthy && !r.draining {
			n++
		}
	}
	return n
}
