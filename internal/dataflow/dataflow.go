// Package dataflow provides the generic machinery shared by the shader IR
// analyses: dense bitvector sets and iterative worklist solvers for forward
// and backward dataflow problems over an arbitrary successor graph.
//
// The package is deliberately dependency-free so both internal/shader (the
// must-write liveness proof that gates the parallel fragment engine) and
// internal/shader/analysis (the device-limit checker, optimisation passes
// and lint diagnostics) can build on the same fixpoint engine without an
// import cycle.
//
// Lattices are bitvectors. A "must" problem meets with intersection and
// initialises non-entry nodes to top (all ones); a "may" problem meets with
// union and initialises to bottom (all zeros). Both solvers run a classic
// worklist iteration to the least (respectively greatest) fixpoint; with
// monotone transfer functions over a finite lattice termination is
// guaranteed.
package dataflow

// BitSet is a fixed-width bitvector. The width is fixed at allocation; all
// operands of a binary operation must share it. Bits beyond the logical
// width may be set by Fill and are harmless as long as every operand was
// produced with the same width.
type BitSet []uint64

// NewBitSet returns an all-zeros set able to hold bits [0, n).
func NewBitSet(n int) BitSet {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	return make(BitSet, words)
}

// Get reports whether bit i is set.
func (b BitSet) Get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << uint(i%64) }

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << uint(i%64) }

// Fill sets every word to all-ones (top of a must lattice).
func (b BitSet) Fill() {
	for w := range b {
		b[w] = ^uint64(0)
	}
}

// Zero clears every word.
func (b BitSet) Zero() {
	for w := range b {
		b[w] = 0
	}
}

// CopyFrom overwrites b with o.
func (b BitSet) CopyFrom(o BitSet) { copy(b, o) }

// Clone returns an independent copy of b.
func (b BitSet) Clone() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// Or sets b to b ∪ o.
func (b BitSet) Or(o BitSet) {
	for w := range b {
		b[w] |= o[w]
	}
}

// IntersectWith sets b to b ∩ o and reports whether b changed.
func (b BitSet) IntersectWith(o BitSet) bool {
	changed := false
	for w := range b {
		if nv := b[w] & o[w]; nv != b[w] {
			b[w] = nv
			changed = true
		}
	}
	return changed
}

// UnionWith sets b to b ∪ o and reports whether b changed.
func (b BitSet) UnionWith(o BitSet) bool {
	changed := false
	for w := range b {
		if nv := b[w] | o[w]; nv != b[w] {
			b[w] = nv
			changed = true
		}
	}
	return changed
}

// Problem describes one bitvector dataflow problem over a graph of N nodes.
//
// For a Forward solve, Transfer maps the node's in-set to its out-set and
// the solver returns the in-sets; for a Backward solve, Transfer maps the
// node's out-set (the union of its successors' in-sets) to its in-set and
// the solver returns the out-sets. Transfer must be monotone; in and out
// may alias, so implementations that read in after writing out must copy
// first.
type Problem struct {
	N     int // number of nodes
	Bits  int // lattice width in bits
	Entry int // entry node (Forward only)
	// Succs returns the successor node indices of node i. Backward solves
	// use the same function and invert it internally.
	Succs func(i int) []int
	// Transfer applies node i's effect: out = f_i(in). The slices are
	// distinct and pre-sized to Bits.
	Transfer func(i int, in, out BitSet)
	// Must selects the meet: true for intersection (top-initialised),
	// false for union (bottom-initialised).
	Must bool
}

// Forward solves the problem in the direction of control flow and returns
// the in-set of every node: the meet over predecessors of their out-sets.
// The entry's in-set is bottom (nothing established before entry). For a
// must problem, nodes unreachable from Entry keep top.
func (p *Problem) Forward() []BitSet {
	in := make([]BitSet, p.N)
	for i := range in {
		in[i] = NewBitSet(p.Bits)
		if p.Must && i != p.Entry {
			in[i].Fill()
		}
	}
	if p.N == 0 {
		return in
	}
	out := NewBitSet(p.Bits)
	work := make([]int, 0, p.N)
	inWork := make([]bool, p.N)
	// Seed with every node so each transfer runs at least once (facts a
	// node generates locally must propagate even when its in-set never
	// changes). In a must problem the extra visits are no-ops: non-entry
	// nodes start at top, and meeting top into a successor changes
	// nothing. Entry is pushed last so it pops first.
	for i := p.N - 1; i >= 0; i-- {
		if i == p.Entry {
			continue
		}
		work = append(work, i)
		inWork[i] = true
	}
	work = append(work, p.Entry)
	inWork[p.Entry] = true
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		p.Transfer(i, in[i], out)
		for _, s := range p.Succs(i) {
			var changed bool
			if p.Must {
				changed = in[s].IntersectWith(out)
			} else {
				changed = in[s].UnionWith(out)
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return in
}

// Backward solves the problem against control flow and returns the out-set
// of every node: the union (may) or intersection (must) over successors of
// their in-sets. Exit nodes (no successors) get bottom out-sets; callers
// that need boundary facts at exits should fold them into Transfer.
func (p *Problem) Backward() []BitSet {
	preds := make([][]int, p.N)
	for i := 0; i < p.N; i++ {
		for _, s := range p.Succs(i) {
			preds[s] = append(preds[s], i)
		}
	}
	out := make([]BitSet, p.N)
	for i := range out {
		out[i] = NewBitSet(p.Bits)
		if p.Must {
			out[i].Fill()
		}
	}
	in := NewBitSet(p.Bits)
	work := make([]int, 0, p.N)
	inWork := make([]bool, p.N)
	// Seed with every node: backward problems have no single exit and
	// running each transfer at least once establishes local facts.
	for i := p.N - 1; i >= 0; i-- {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		p.Transfer(i, out[i], in)
		for _, pr := range preds[i] {
			var changed bool
			if p.Must {
				changed = out[pr].IntersectWith(in)
			} else {
				changed = out[pr].UnionWith(in)
			}
			if changed && !inWork[pr] {
				work = append(work, pr)
				inWork[pr] = true
			}
		}
	}
	return out
}

// Dominators computes the dominator sets of a graph as a must-forward
// problem: dom(b) = {b} ∪ ⋂_{p ∈ preds(b)} dom(p). Node i dominates node j
// iff result[j].Get(i). Nodes unreachable from entry report all-ones
// (dominated by everything, vacuously). The entry dominates itself.
func Dominators(n, entry int, succs func(i int) []int) []BitSet {
	p := &Problem{
		N:     n,
		Bits:  n,
		Entry: entry,
		Succs: succs,
		Must:  true,
		Transfer: func(i int, in, out BitSet) {
			out.CopyFrom(in)
			out.Set(i)
		},
	}
	dom := p.Forward()
	// Forward returns in-sets (meet over preds of dom(p)); the dominator
	// set of a node includes the node itself.
	for i := range dom {
		dom[i].Set(i)
	}
	return dom
}
