package dataflow

import "testing"

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	if len(b) != 3 {
		t.Fatalf("want 3 words for 130 bits, got %d", len(b))
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Error("unexpected bits set")
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("bit 64 still set after Clear")
	}

	c := NewBitSet(130)
	c.Set(0)
	c.Set(5)
	if changed := b.IntersectWith(c); !changed {
		t.Error("intersect should have changed b (dropped 129)")
	}
	if !b.Get(0) || b.Get(129) || b.Get(5) {
		t.Error("intersection wrong")
	}
	if changed := b.UnionWith(c); !changed {
		t.Error("union should have added bit 5")
	}
	if !b.Get(5) {
		t.Error("union missed bit 5")
	}
	if NewBitSet(0) == nil {
		t.Error("zero-width set must still allocate")
	}
}

// Diamond CFG: 0 -> {1, 2} -> 3. Node 1 establishes fact A, node 2
// establishes facts A and B. At the join only A must hold; either may hold.
func diamondSuccs(i int) []int {
	switch i {
	case 0:
		return []int{1, 2}
	case 1, 2:
		return []int{3}
	}
	return nil
}

func TestForwardMustMeetsAtJoin(t *testing.T) {
	const bitA, bitB = 0, 1
	p := &Problem{
		N: 4, Bits: 2, Entry: 0, Succs: diamondSuccs, Must: true,
		Transfer: func(i int, in, out BitSet) {
			out.CopyFrom(in)
			switch i {
			case 1:
				out.Set(bitA)
			case 2:
				out.Set(bitA)
				out.Set(bitB)
			}
		},
	}
	in := p.Forward()
	if !in[3].Get(bitA) {
		t.Error("A holds on both paths; must-meet dropped it")
	}
	if in[3].Get(bitB) {
		t.Error("B holds on one path only; must-meet kept it")
	}
	if in[0].Get(bitA) || in[0].Get(bitB) {
		t.Error("entry in-set must be bottom")
	}
}

func TestForwardMayUnionsAtJoin(t *testing.T) {
	const bitA, bitB = 0, 1
	p := &Problem{
		N: 4, Bits: 2, Entry: 0, Succs: diamondSuccs, Must: false,
		Transfer: func(i int, in, out BitSet) {
			out.CopyFrom(in)
			if i == 1 {
				out.Set(bitA)
			}
			if i == 2 {
				out.Set(bitB)
			}
		},
	}
	in := p.Forward()
	if !in[3].Get(bitA) || !in[3].Get(bitB) {
		t.Error("may-meet must union both paths' facts")
	}
}

func TestForwardUnreachableStaysTop(t *testing.T) {
	// Node 2 unreachable: 0 -> 1, 2 -> 1.
	p := &Problem{
		N: 3, Bits: 1, Entry: 0, Must: true,
		Succs: func(i int) []int {
			if i == 0 || i == 2 {
				return []int{1}
			}
			return nil
		},
		Transfer: func(i int, in, out BitSet) { out.CopyFrom(in) },
	}
	in := p.Forward()
	if !in[2].Get(0) {
		t.Error("unreachable node must keep top in a must problem")
	}
	// The unreachable node's top out-set must not weaken node 1's meet —
	// but with meet-over-incoming-edges it does intersect; top is the
	// identity of intersection, so node 1 still sees entry's facts only.
	if in[1].Get(0) {
		t.Error("node 1 should have bottom (entry established nothing)")
	}
}

// Backward may (classic liveness): straight line 0 -> 1 -> 2 where node 2
// "uses" fact A and node 1 "kills" it.
func TestBackwardLiveness(t *testing.T) {
	const bitA = 0
	p := &Problem{
		N: 3, Bits: 1, Must: false,
		Succs: func(i int) []int {
			if i < 2 {
				return []int{i + 1}
			}
			return nil
		},
		Transfer: func(i int, out, in BitSet) {
			in.CopyFrom(out)
			switch i {
			case 2:
				in.Set(bitA) // use
			case 1:
				in.Clear(bitA) // def kills liveness
			}
		},
	}
	out := p.Backward()
	if !out[1].Get(bitA) {
		t.Error("A is live-out of node 1 (used at 2)")
	}
	if out[0].Get(bitA) {
		t.Error("A is dead-out of node 0 (killed at 1 before the use)")
	}
	if out[2].Get(bitA) {
		t.Error("exit node has empty live-out")
	}
}

func TestDominators(t *testing.T) {
	// 0 -> 1 -> {2, 3}; 2 -> 4; 3 -> 4.
	succs := func(i int) []int {
		switch i {
		case 0:
			return []int{1}
		case 1:
			return []int{2, 3}
		case 2, 3:
			return []int{4}
		}
		return nil
	}
	dom := Dominators(5, 0, succs)
	mustDom := func(a, b int, want bool) {
		t.Helper()
		if dom[b].Get(a) != want {
			t.Errorf("dom(%d, %d) = %v, want %v", a, b, !want, want)
		}
	}
	mustDom(0, 4, true)  // entry dominates all
	mustDom(1, 4, true)  // single path through 1
	mustDom(2, 4, false) // join: neither branch dominates
	mustDom(3, 4, false)
	mustDom(4, 4, true) // self-domination
	mustDom(4, 2, false)
}
