package device

import (
	"testing"

	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/timing"
)

func profiles() []*Profile {
	return []*Profile{VideoCoreIV(), PowerVRSGX545(), Generic()}
}

func TestProfileInvariants(t *testing.T) {
	for _, p := range profiles() {
		if p.Name == "" {
			t.Error("unnamed profile")
		}
		if p.GPUClockHz <= 0 || p.FragmentParallelism <= 0 {
			t.Errorf("%s: shader engine rates invalid", p.Name)
		}
		if p.TileW <= 0 || p.TileH <= 0 {
			t.Errorf("%s: tile size invalid", p.Name)
		}
		if p.MemBus.BytesPerSecond <= 0 {
			t.Errorf("%s: memory bus unset", p.Name)
		}
		if p.QueueDepth < 1 {
			t.Errorf("%s: queue depth %d", p.Name, p.QueueDepth)
		}
		for _, u := range []VBOUsage{UsageStaticDraw, UsageDynamicDraw, UsageStreamDraw} {
			if _, ok := p.VBOHintCost[u]; !ok {
				t.Errorf("%s: missing VBO hint cost for %v", p.Name, u)
			}
		}
		// Limits must accommodate the paper's block-16 sgemm kernel
		// (33 texture fetches) but reject block 32 (65 fetches).
		if p.Limits.MaxTexInstructions < 33 {
			t.Errorf("%s: tex limit %d rejects the paper's block-16 kernel", p.Name, p.Limits.MaxTexInstructions)
		}
		if p.Name != Generic().Name && p.Limits.MaxTexInstructions >= 65 {
			t.Errorf("%s: tex limit %d accepts block 32, contradicting the paper", p.Name, p.Limits.MaxTexInstructions)
		}
		if p.Limits.MaxVaryingVectors < 8 || p.Limits.MaxAttributes < 8 {
			t.Errorf("%s: below GLES2 minima", p.Name)
		}
	}
}

func TestFragCyclesToTime(t *testing.T) {
	p := Generic() // 1 GHz × 1024 lanes
	// 1024e6 cycles / (1e9*1024 cycles/s) = 1 ms.
	got := p.FragCyclesToTime(1024e6)
	want := timing.Millisecond
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > timing.Nanosecond {
		t.Errorf("FragCyclesToTime = %v, want ~%v", got, want)
	}
	if p.FragCyclesToTime(0) != 0 || p.FragCyclesToTime(-5) != 0 {
		t.Error("non-positive cycles should cost nothing")
	}
	// Tiny work still takes at least 1 ps.
	if p.FragCyclesToTime(1) < 1 {
		t.Error("single cycle rounded to zero")
	}
}

func TestVertexTime(t *testing.T) {
	p := VideoCoreIV()
	one := p.VertexTime(1)
	six := p.VertexTime(6)
	if one <= 0 || six < 6*one-timing.Nanosecond {
		t.Errorf("vertex times: 1 -> %v, 6 -> %v", one, six)
	}
}

func TestUsageStrings(t *testing.T) {
	if UsageStaticDraw.String() != "STATIC_DRAW" ||
		UsageDynamicDraw.String() != "DYNAMIC_DRAW" ||
		UsageStreamDraw.String() != "STREAM_DRAW" {
		t.Error("usage names wrong")
	}
}

func TestPaperCalibrationAnchors(t *testing.T) {
	vc, sgx := VideoCoreIV(), PowerVRSGX545()
	// VideoCore: 60 Hz default presentation gate; SGX: decoupled.
	if vc.DefaultSwapInterval != 1 {
		t.Error("VideoCore must default to swap interval 1 (Fig. 3 baseline)")
	}
	if sgx.DefaultSwapInterval != 0 {
		t.Error("SGX default pacing must not be vsync-gated (paper §V-B)")
	}
	// VideoCore tiles 64×64 vs SGX 16×16 (paper §V-B).
	if vc.TileW != 64 || sgx.TileW != 16 {
		t.Errorf("tile sizes: vc=%d sgx=%d", vc.TileW, sgx.TileW)
	}
	// VideoCore's DMA copy engine runs ~1 GB/s (paper cites [6]) and can
	// stream; SGX's blit path is slower and cannot.
	if vc.CopyEngine.BytesPerSecond < 0.9e9 || vc.CopyEngine.BytesPerSecond > 1.1e9 {
		t.Errorf("VideoCore DMA = %g B/s, paper says ~1 GB/s", vc.CopyEngine.BytesPerSecond)
	}
	if sgx.CopyEngine.BytesPerSecond >= vc.CopyEngine.BytesPerSecond {
		t.Error("SGX copy path must be slower than VideoCore's DMA")
	}
	if !vc.CopyStreamsOnOverwrite || sgx.CopyStreamsOnOverwrite {
		t.Error("streaming-on-overwrite capability must differ (Fig. 5b)")
	}
	if !vc.UploadAsync || sgx.UploadAsync {
		t.Error("upload asynchrony must differ (paper §II Texture Loading)")
	}
	// VideoCore's ARM11-class driver CPU is far slower per draw.
	if vc.DrawSubmitCost < 4*sgx.DrawSubmitCost {
		t.Errorf("driver CPU costs: vc=%v sgx=%v", vc.DrawSubmitCost, sgx.DrawSubmitCost)
	}
	// Cost models favour MAD fusion and mul24 on both devices.
	for _, p := range []*Profile{vc, sgx} {
		if p.CostModel.Costs[shader.OpMUL24] >= p.CostModel.Costs[shader.OpMUL] {
			t.Errorf("%s: mul24 not cheaper than mul", p.Name)
		}
	}
}
