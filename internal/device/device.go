// Package device defines the hardware/driver profiles of the simulated
// platforms: the Raspberry Pi's Broadcom VideoCore IV and a PowerVR SGX 545
// device, the two tile-based deferred-rendering (TBDR) GPUs the paper
// evaluates, plus a generic profile for tests.
//
// The parameter values are calibrated so the paper's *relative* results
// emerge from the mechanisms in internal/gpu (see EXPERIMENTS.md for the
// calibration notes); absolute times are representative of the device
// class, not measurements.
package device

import (
	"fmt"

	"gles2gpgpu/internal/mem"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/timing"
)

// VBOUsage mirrors the GLES buffer-usage hints.
type VBOUsage int

// Buffer usage hints.
const (
	UsageStaticDraw VBOUsage = iota
	UsageDynamicDraw
	UsageStreamDraw
)

func (u VBOUsage) String() string {
	switch u {
	case UsageDynamicDraw:
		return "DYNAMIC_DRAW"
	case UsageStreamDraw:
		return "STREAM_DRAW"
	}
	return "STATIC_DRAW"
}

// Profile describes one simulated platform: GPU micro-architecture, memory
// system, driver cost model and display properties.
type Profile struct {
	Name string

	// Shader engine.
	GPUClockHz float64
	// FragmentParallelism is the number of fragment-shader cycles retired
	// per GPU clock across all cores (QPU count × issue width equivalent).
	FragmentParallelism   float64
	VertexCyclesPerVertex int64
	CostModel             shader.CostModel
	Limits                shader.Limits

	// Tiling micro-architecture (paper Fig. 1).
	TileW, TileH int
	// Deferred enables frame-overlap (TBDR): the fragment pass of frame N
	// runs while frame N+1 is submitted and binned. Dependencies between
	// consecutive frames insert bubbles (paper §II).
	Deferred bool
	// QueueDepth is how many frames the driver lets the CPU run ahead.
	QueueDepth int

	// Memory system.
	MemBus mem.Bus // main-memory bandwidth seen by the tile engine
	// TexBytesPerFetch is the effective main-memory traffic per texture
	// fetch after cache filtering.
	TexBytesPerFetch float64

	// Copy engine for framebuffer→texture transfers (glCopyTexImage2D).
	// VideoCore IV drives a DMA engine at ~1 GB/s (paper §V-B); SGX lacks
	// DMA assistance and the copy runs on a slow blitter path that cannot
	// keep up with rendering.
	CopyEngine mem.Bus
	// CopyBlocksCPU: the copy stalls the submitting CPU thread until done
	// (no completion interrupt in the driver). False = fire and forget.
	CopyBlocksCPU bool
	// CopyStreamsOnOverwrite: the copy engine can stream into live
	// (reused) storage while the producing pass is still rendering. True
	// for a real DMA engine (VideoCore); false for the SGX blit path,
	// whose full-render wait is the paper's "false sharing" (Fig. 5b).
	CopyStreamsOnOverwrite bool

	// Host→GPU upload path (glTexImage2D / glTexSubImage2D / BufferData).
	UploadBus mem.Bus
	// UploadAsync: uploads are handed to the DMA engine so the CPU only
	// pays the submission cost (paper §II Texture Loading: "the copy can
	// be performed by DMA, so that the operation is not blocking").
	UploadAsync bool

	// Driver allocation cost models.
	TexAlloc mem.AllocModel
	BufAlloc mem.AllocModel

	// Driver CPU costs.
	APICallCost     timing.Time // cheap state-setting calls
	DrawSubmitCost  timing.Time // glDrawArrays submission
	UploadIssueCost timing.Time
	// FlushCost is the penalty for serialising the deferred pipeline when
	// consecutive frames depend on each other (the paper's "bubbles").
	FlushCost timing.Time
	// ClientArrayCostPerByte is the extra per-draw cost of non-VBO vertex
	// arrays (implicit copy into GPU memory, paper §II Vertex Processing).
	ClientArrayCostPerByte timing.Time
	// VBOHintCost is the per-draw consistency-maintenance cost by usage
	// hint (STATIC cheapest).
	VBOHintCost map[VBOUsage]timing.Time

	// Windowing system.
	RefreshHz           float64
	DefaultSwapInterval int
	SwapBookkeeping     timing.Time // CPU cost of eglSwapBuffers itself
}

// FragCyclesToTime converts a total fragment-cycle count into GPU time.
func (p *Profile) FragCyclesToTime(cycles int64) timing.Time {
	if cycles <= 0 {
		return 0
	}
	eff := p.GPUClockHz * p.FragmentParallelism
	return timing.Cycles(cycles, eff)
}

// VertexTime returns the vertex-processing + binning time for n vertices.
func (p *Profile) VertexTime(n int) timing.Time {
	return timing.Cycles(int64(n)*p.VertexCyclesPerVertex, p.GPUClockHz)
}

// VideoCoreIV returns the Raspberry Pi profile.
//
// Calibration notes (targets from the paper's Fig. 3/4/5):
//   - 60 Hz vsync with swap interval 1 by default: the baseline for Fig. 3.
//   - A slow ARM11-class CPU driver: draw submission ≈ 1 ms, which caps the
//     pipelined sum rate and makes the fp24 gain small on sum (paper: +1%)
//     while it stays visible on sgemm.
//   - DMA copy engine ≈ 1 GB/s, asynchronous: framebuffer rendering stays
//     competitive (Fig. 4a right, Fig. 4b "FB always wins on VideoCore").
//   - Expensive texture allocation: texture reuse pays off (+15%, Fig. 5a).
//   - Large 64×64 tiles.
func VideoCoreIV() *Profile {
	cm := shader.DefaultCostModel()
	return &Profile{
		Name:                  "VideoCore IV (Raspberry Pi)",
		GPUClockHz:            250e6,
		FragmentParallelism:   640, // effective lanes × pipelining (calibrated)
		VertexCyclesPerVertex: 80,
		CostModel:             cm,
		Limits: shader.Limits{
			MaxInstructions:    512,
			MaxTexInstructions: 40,
			MaxTemps:           64,
			MaxUniformVectors:  128,
			MaxVaryingVectors:  8,
			MaxAttributes:      8,
			// The QPU issues texture lookups through a small request FIFO;
			// deep result→coordinate chains stall it and the blob compiler
			// rejects them.
			MaxDependentTexReads: 4,
		},
		TileW: 64, TileH: 64,
		Deferred:               true,
		QueueDepth:             2,
		MemBus:                 mem.Bus{BytesPerSecond: 18e9, Latency: 2 * timing.Microsecond},
		TexBytesPerFetch:       4.0,
		CopyEngine:             mem.Bus{BytesPerSecond: 1.0e9, Latency: 500 * timing.Microsecond},
		CopyBlocksCPU:          false, // DMA engine
		CopyStreamsOnOverwrite: true,
		UploadBus:              mem.Bus{BytesPerSecond: 20e9, Latency: 20 * timing.Microsecond},
		UploadAsync:            true,
		TexAlloc:               mem.AllocModel{Fixed: 40 * timing.Microsecond, PerByte: 100 * timing.Nanosecond},
		BufAlloc:               mem.AllocModel{Fixed: 10 * timing.Microsecond, PerByte: 100 * timing.Nanosecond},
		APICallCost:            4 * timing.Microsecond,
		DrawSubmitCost:         920 * timing.Microsecond, // ARM11 driver overhead
		UploadIssueCost:        300 * timing.Microsecond,
		FlushCost:              5500 * timing.Microsecond,
		ClientArrayCostPerByte: 40 * timing.Nanosecond,
		VBOHintCost: map[VBOUsage]timing.Time{
			UsageStaticDraw:  0,
			UsageDynamicDraw: 8 * timing.Microsecond,
			UsageStreamDraw:  4 * timing.Microsecond,
		},
		RefreshHz:           60,
		DefaultSwapInterval: 1,
		SwapBookkeeping:     80 * timing.Microsecond,
	}
}

// PowerVRSGX545 returns the PowerVR SGX 545 mobile-platform profile.
//
// Calibration notes:
//   - EGL synchronisation is not gated by the 60 Hz panel (the paper: "on
//     SGX [SwapInterval(0)] has no effect, since synchronisation keeps
//     taking place at the default rate which is much higher"): modelled as
//     default swap interval 0 with a non-trivial swap drain cost, so
//     removing eglSwapBuffers still gives the 3.47× of Fig. 3.
//   - No DMA assistance for framebuffer→texture copies: the blit path is
//     slow and stalls the submitting thread (Fig. 4a: texture rendering
//     beats FB by orders of magnitude for sum; Fig. 5b: reuse-induced false
//     sharing drops sgemm to 0.7×).
//   - Small 16×16 tiles; faster host CPU (Atom/Cortex-A class).
//   - Cheap texture allocation: input-texture reuse buys nothing and the
//     write-after-read wait makes it slightly slower (Fig. 5a: −2…−7%).
func PowerVRSGX545() *Profile {
	cm := shader.DefaultCostModel()
	return &Profile{
		Name:                  "PowerVR SGX 545",
		GPUClockHz:            200e6,
		FragmentParallelism:   512, // USSE2 pipes × pipelining (calibrated)
		VertexCyclesPerVertex: 40,
		CostModel:             cm,
		Limits: shader.Limits{
			MaxInstructions:    512,
			MaxTexInstructions: 40,
			MaxTemps:           64,
			MaxUniformVectors:  64,
			MaxVaryingVectors:  8,
			MaxAttributes:      8,
			// USSE pre-schedules texture iterations; dependent reads fall
			// back to in-shader fetches with a bounded chain depth.
			MaxDependentTexReads: 8,
		},
		TileW: 16, TileH: 16,
		Deferred:               true,
		QueueDepth:             2,
		MemBus:                 mem.Bus{BytesPerSecond: 8e9, Latency: 1 * timing.Microsecond},
		TexBytesPerFetch:       4.0,
		CopyEngine:             mem.Bus{BytesPerSecond: 900e6, Latency: 300 * timing.Microsecond},
		CopyBlocksCPU:          true, // no DMA: the driver thread babysits the blit
		UploadBus:              mem.Bus{BytesPerSecond: 1.2e9, Latency: 8 * timing.Microsecond},
		UploadAsync:            false,
		TexAlloc:               mem.AllocModel{Fixed: 100 * timing.Microsecond, PerByte: 400 * timing.Nanosecond},
		BufAlloc:               mem.AllocModel{Fixed: 20 * timing.Microsecond, PerByte: 80 * timing.Nanosecond},
		APICallCost:            1 * timing.Microsecond,
		DrawSubmitCost:         120 * timing.Microsecond,
		UploadIssueCost:        15 * timing.Microsecond,
		FlushCost:              1000 * timing.Microsecond,
		ClientArrayCostPerByte: 40 * timing.Nanosecond,
		VBOHintCost: map[VBOUsage]timing.Time{
			UsageStaticDraw:  0,
			UsageDynamicDraw: 3 * timing.Microsecond,
			UsageStreamDraw:  1 * timing.Microsecond,
		},
		RefreshHz:           60,
		DefaultSwapInterval: 0, // panel sync decoupled from EGL pacing
		SwapBookkeeping:     3500 * timing.Microsecond,
	}
}

// ByName returns a fresh profile for a short device name: "vc4", "sgx" or
// "generic" (matching the cmd flag vocabulary), or the profile's full Name.
// Every call constructs a new *Profile; callers that need engines to share
// compiled programs must share the returned instance, not call ByName twice.
func ByName(name string) (*Profile, error) {
	switch name {
	case "vc4", VideoCoreIV().Name:
		return VideoCoreIV(), nil
	case "sgx", PowerVRSGX545().Name:
		return PowerVRSGX545(), nil
	case "generic", Generic().Name:
		return Generic(), nil
	}
	return nil, fmt.Errorf("device: unknown device %q (want vc4, sgx or generic)", name)
}

// Names lists the short names ByName accepts, in presentation order.
func Names() []string { return []string{"vc4", "sgx", "generic"} }

// Generic returns a fast, permissive profile for unit tests: negligible
// driver costs, no vsync gating, huge limits.
func Generic() *Profile {
	cm := shader.DefaultCostModel()
	return &Profile{
		Name:                  "generic-test",
		GPUClockHz:            1e9,
		FragmentParallelism:   1024,
		VertexCyclesPerVertex: 10,
		CostModel:             cm,
		Limits:                shader.DefaultLimits(),
		TileW:                 32, TileH: 32,
		Deferred:               true,
		QueueDepth:             2,
		MemBus:                 mem.Bus{BytesPerSecond: 32e9},
		TexBytesPerFetch:       1.0,
		CopyEngine:             mem.Bus{BytesPerSecond: 16e9},
		UploadBus:              mem.Bus{BytesPerSecond: 16e9},
		UploadAsync:            false,
		APICallCost:            10 * timing.Nanosecond,
		DrawSubmitCost:         100 * timing.Nanosecond,
		UploadIssueCost:        10 * timing.Nanosecond,
		FlushCost:              1 * timing.Microsecond,
		ClientArrayCostPerByte: 1 * timing.Nanosecond,
		VBOHintCost: map[VBOUsage]timing.Time{
			UsageStaticDraw: 0, UsageDynamicDraw: 0, UsageStreamDraw: 0,
		},
		RefreshHz:           60,
		DefaultSwapInterval: 0,
		SwapBookkeeping:     10 * timing.Nanosecond,
	}
}
