// Package gpgpu is the public API of gles2gpgpu: general-purpose
// computations on OpenGL ES 2.0-class mobile GPUs, as described in
// Trompouki & Kosmidis, "Optimisation Opportunities and Evaluation for
// GPGPU Applications on Low-End Mobile GPUs" (DATE 2017), running on the
// repository's simulated GLES2 stack and tile-based deferred-rendering GPU
// timing model.
//
// Quick start:
//
//	cfg := gpgpu.Config{
//		Device: gpgpu.VideoCoreIV(),
//		Width:  256, Height: 256,
//		Swap:   gpgpu.SwapNone,
//		Target: gpgpu.TargetTexture,
//		UseVBO: true,
//	}
//	e, _ := gpgpu.NewEngine(cfg)
//	r, _ := gpgpu.NewSum(e, a, b) // a, b: *gpgpu.Matrix
//	_ = r.RunOnce(context.Background())
//	c, _ := r.Result()
//
// Every implementation choice the paper evaluates is a Config field; see
// Config, SwapMode, RenderTarget and KernelOptions. Virtual execution time
// accumulates on Engine.Now().
//
// For long-lived serving (shared compiled kernels, tensor residency pools,
// batching, backpressure) see internal/serve and the cmd/gles2gpgpud
// daemon.
package gpgpu

import (
	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/pipeline"
	"gles2gpgpu/internal/timing"
)

// Core framework types (the paper's contribution).
type (
	// Config selects the implementation variant of the framework.
	Config = core.Config
	// Engine owns one simulated EGL/GLES2 stack.
	Engine = core.Engine
	// Kernel is a compiled GPGPU kernel.
	Kernel = core.Kernel
	// Tensor is a GPU-resident encoded matrix.
	Tensor = core.Tensor
	// Runner is a benchmark workload.
	Runner = core.Runner
	// Releaser is implemented by runners whose tensors can be returned to
	// the engine's residency pool.
	Releaser = core.Releaser
	// TensorPool recycles texture allocations across runner lifetimes
	// (enable with Config.TensorPoolBytes).
	TensorPool = core.TensorPool
	// PoolStats snapshots a TensorPool's hit/miss/eviction counters.
	PoolStats = core.PoolStats
	// SharedProgramCache shares compiled shader programs between engines
	// built from one DeviceProfile instance (Config.ProgramCache).
	SharedProgramCache = gles.SharedProgramCache
	// SumRunner runs c = a + b.
	SumRunner = core.SumRunner
	// SgemmRunner runs the multi-pass blocked C = A·B.
	SgemmRunner = core.SgemmRunner
	// SaxpyRunner runs y' = alpha·x + y.
	SaxpyRunner = core.SaxpyRunner
	// JacobiRunner iterates Jacobi relaxation.
	JacobiRunner = core.JacobiRunner
	// ParticlesRunner steps a texture-resident particle system.
	ParticlesRunner = core.ParticlesRunner
	// ReactionDiffusionRunner steps a Gray-Scott reaction-diffusion
	// system.
	ReactionDiffusionRunner = core.ReactionDiffusionRunner
	// PingPong is a double-buffered tensor pair for state-stepping
	// workloads.
	PingPong = core.PingPong
	// StepOpts controls an Engine.StepLoop run (iteration bound, residual
	// check cadence, convergence tolerance).
	StepOpts = core.StepOpts
	// StepResult reports how a StepLoop ended.
	StepResult = core.StepResult
	// ReduceRunner sums all elements via a 2×2 pyramid reduction.
	ReduceRunner = core.ReduceRunner
	// TransposeRunner computes matrix transposition.
	TransposeRunner = core.TransposeRunner
	// Report summarises pipeline activity and utilisation.
	Report = core.Report
	// Conv3x3Runner applies a 3×3 convolution.
	Conv3x3Runner = core.Conv3x3Runner
	// SwapMode selects eglSwapBuffers behaviour.
	SwapMode = core.SwapMode
	// RenderTarget selects framebuffer or texture rendering.
	RenderTarget = core.RenderTarget
)

// Data encoding types (the DATE 2016 float↔RGBA8 scheme).
type (
	// Matrix is a host-side matrix with an encoding range.
	Matrix = codec.Matrix
	// Range is the affine user↔encoded-domain map.
	Range = codec.Range
	// Depth selects fp32 or fp24 encoding.
	Depth = codec.Depth
	// KernelOptions selects kernel-code variants (fp24, mul24).
	KernelOptions = kernels.Options
)

// Device and timing types.
type (
	// DeviceProfile describes a simulated platform.
	DeviceProfile = device.Profile
	// Time is virtual time in picoseconds.
	Time = timing.Time
)

// Kernel-pipeline types: declarative DAGs of kernels with an engine-backed
// planner (topological ordering, on-device resident intermediates,
// proof-gated pass fusion). See internal/pipeline for the full contract.
type (
	// PipelineGraph is a declarative DAG of kernel stages.
	PipelineGraph = pipeline.Graph
	// PipelineStage is one kernel pass of a graph.
	PipelineStage = pipeline.Stage
	// PipelineBinding connects a stage's sampler to a producer stage or an
	// external tensor.
	PipelineBinding = pipeline.Binding
	// PipelinePlan is a compiled, executable graph bound to an engine.
	PipelinePlan = pipeline.Plan
	// PipelineRunStats describes one run: fused or not, passes fused,
	// readbacks elided, per-stage virtual times.
	PipelineRunStats = pipeline.RunStats
	// PipelineStageStat is one stage's share of a run's virtual time.
	PipelineStageStat = pipeline.StageStat
	// FusionDecision is the planner's verdict for one internal graph edge.
	FusionDecision = pipeline.FusionDecision
)

// PipelineSrcInput is the external input name the prebuilt vision graphs
// sample.
const PipelineSrcInput = pipeline.SrcInput

// Configuration constants.
const (
	SwapVsync         = core.SwapVsync
	SwapNoVsync       = core.SwapNoVsync
	SwapNone          = core.SwapNone
	TargetFramebuffer = core.TargetFramebuffer
	TargetTexture     = core.TargetTexture
	Depth32           = codec.Depth32
	Depth24           = codec.Depth24
)

// Constructors.
var (
	// NewEngine builds the simulated stack for a configuration.
	NewEngine = core.NewEngine
	// NewMatrix allocates a zero matrix with the unit range.
	NewMatrix = codec.NewMatrix
	// NewSum prepares the streaming-addition workload.
	NewSum = core.NewSum
	// NewSgemm prepares the multi-pass blocked matrix multiply.
	NewSgemm = core.NewSgemm
	// NewSaxpy prepares y' = alpha·x + y.
	NewSaxpy = core.NewSaxpy
	// NewJacobi prepares the Jacobi relaxation solver.
	NewJacobi = core.NewJacobi
	// NewParticles prepares the texture-resident particle system.
	NewParticles = core.NewParticles
	// NewReactionDiffusion prepares the Gray-Scott reaction-diffusion
	// system.
	NewReactionDiffusion = core.NewReactionDiffusion
	// MaxAbsDiff is the default StepLoop residual (max element change
	// between residual checks).
	MaxAbsDiff = core.MaxAbsDiff
	// NewReduce prepares the pyramid sum reduction.
	NewReduce = core.NewReduce
	// NewTranspose prepares out = inᵀ.
	NewTranspose = core.NewTranspose
	// NewConv3x3 prepares a 3×3 convolution.
	NewConv3x3 = core.NewConv3x3

	// VideoCoreIV is the Raspberry Pi device profile.
	VideoCoreIV = device.VideoCoreIV
	// PowerVRSGX545 is the PowerVR SGX 545 device profile.
	PowerVRSGX545 = device.PowerVRSGX545
	// GenericDevice is a fast permissive profile for experimentation.
	GenericDevice = device.Generic
	// DeviceByName resolves "vc4", "sgx" or "generic" to a fresh profile.
	DeviceByName = device.ByName
	// DeviceNames lists the DeviceByName vocabulary.
	DeviceNames = device.Names

	// NewSharedProgramCache builds a compiled-program cache for sharing
	// across engines (see Config.ProgramCache).
	NewSharedProgramCache = gles.NewSharedProgramCache

	// UnitRange is the identity encoding range [0,1).
	UnitRange = codec.Unit

	// DefaultKernelOptions is 32-bit encoding with full-precision
	// arithmetic.
	DefaultKernelOptions = kernels.DefaultOptions
	// FP24KernelOptions is the paper's optimised kernel code: 24-bit
	// encoding, mul24 arithmetic, 3-byte I/O.
	FP24KernelOptions = kernels.FP24Options

	// CompilePipeline validates a graph, plans it against an engine and
	// installs composed programs for every provably fusable chain.
	CompilePipeline = pipeline.Compile
	// Conv3x3Kernel generates the 3×3 convolution fragment shader a
	// PipelineStage can name (sampler "text0", uniform "k[9]").
	Conv3x3Kernel = kernels.Conv3x3

	// Prebuilt computer-vision pipeline graphs (see internal/pipeline):
	// separable Gaussian + tone map, adaptive thresholding, histogram
	// equalisation, Sobel → non-max suppression, and a Gaussian pyramid.
	SepConvGraph           = pipeline.SepConvGraph
	AdaptiveThresholdGraph = pipeline.AdaptiveThresholdGraph
	HistEqGraph            = pipeline.HistEqGraph
	SobelGraph             = pipeline.SobelGraph
	PyramidGraph           = pipeline.PyramidGraph
)
