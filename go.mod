module gles2gpgpu

go 1.22
